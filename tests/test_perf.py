"""Performance versioning: history snapshots, degradation detectors,
the perf CLI, the campaign diff engine, and the turbo-aware bench gate
helpers."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.campaign.diff import (
    DEFAULT_METRICS,
    diff_records,
    parse_selector,
    record_axes,
    select,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.core.config import ClockPlan
from repro.errors import CampaignError
from repro.perf import (
    HISTORY_SCHEMA,
    append_snapshot,
    classify_delta,
    classify_history,
    classify_series,
    load_history,
    mad,
    make_snapshot,
    median,
    robust_z,
    series_names,
    series_values,
)

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500


def _report(**series):
    """Minimal bench_sim_speed-report-shaped dict."""
    rows = {name: {"cycles_per_sec": cps, "instrs_per_sec": cps,
                   "seconds": 0.1, "cycles": 1000}
            for name, cps in series.items()}
    return {"series": rows, "python": "3.x",
            "turbo_speedup": {"baseline/gcc": 3.4}}


class TestHistory:
    def test_snapshot_shape_and_injected_timestamp(self):
        snap = make_snapshot(_report(**{"baseline/gcc": 70000}),
                             timestamp=123.5, code="abc123")
        assert snap["schema"] == HISTORY_SCHEMA
        assert snap["timestamp"] == 123.5
        assert snap["code"] == "abc123"
        assert snap["series"]["baseline/gcc"]["cycles_per_sec"] == 70000
        assert snap["turbo_speedup"] == {"baseline/gcc": 3.4}

    def test_default_code_is_current_fingerprint(self):
        from repro.campaign.spec import code_fingerprint

        snap = make_snapshot(_report(), timestamp=0.0)
        assert snap["code"] == code_fingerprint()

    def test_append_load_round_trip_sorts_by_timestamp(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for ts in (3.0, 1.0, 2.0):   # appended out of order
            append_snapshot(path, make_snapshot(
                _report(**{"a/b": 100 + ts}), timestamp=ts, code="c"))
        history = load_history(path)
        assert [s["timestamp"] for s in history] == [1.0, 2.0, 3.0]

    def test_damaged_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_snapshot(path, make_snapshot(_report(**{"a/b": 1}),
                                            timestamp=1.0, code="c"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write(json.dumps({"schema": 99, "series": {}}) + "\n")
            fh.write("[1, 2]\n")
        assert len(load_history(path)) == 1

    def test_append_refuses_foreign_schema(self, tmp_path):
        with pytest.raises(ValueError):
            append_snapshot(tmp_path / "h.jsonl", {"schema": 99})

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_series_names_include_speedup_synthetics(self):
        history = [make_snapshot(_report(**{"a/b": 1}), timestamp=1.0,
                                 code="c")]
        names = series_names(history)
        assert "a/b" in names
        assert "turbo_speedup:baseline/gcc" in names
        assert "turbo_speedup:baseline/gcc" not in series_names(
            history, speedups=False)

    def test_series_values_skip_absent_snapshots(self, tmp_path):
        history = [
            make_snapshot(_report(**{"a/b": 10}), timestamp=1.0, code="c"),
            make_snapshot(_report(**{"other/b": 5}), timestamp=2.0,
                          code="c"),
            make_snapshot(_report(**{"a/b": 12}), timestamp=3.0, code="c"),
        ]
        assert series_values(history, "a/b") == [(1.0, 10.0), (3.0, 12.0)]
        speedups = series_values(history, "turbo_speedup:baseline/gcc")
        assert [v for _t, v in speedups] == [3.4, 3.4, 3.4]


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1, 1, 1]) == 0.0
        assert mad([1, 2, 3, 4, 100]) == 1.0

    def test_robust_z_undefined_cases(self):
        assert robust_z(5.0, [1.0, 2.0]) is None          # too small
        assert robust_z(5.0, [2.0, 2.0, 2.0, 2.0]) is None  # zero spread

    def test_robust_z_value(self):
        z = robust_z(10.0, [1.0, 2.0, 3.0, 2.0, 1.0])
        assert z > 3.5


class TestClassifySeries:
    def test_insufficient_history_is_noise(self):
        v = classify_series([100.0, 95.0], name="s")
        assert v.verdict == "noise"
        assert "insufficient" in v.reason

    def test_flat_series_is_stable(self):
        v = classify_series([100.0] * 6)
        assert v.verdict == "stable"

    def test_clear_regression_is_degraded(self):
        v = classify_series([100.0, 101.0, 99.0, 100.0, 70.0])
        assert v.verdict == "degraded"
        assert v.rel_delta < -0.25

    def test_clear_improvement_is_improved(self):
        v = classify_series([100.0, 101.0, 99.0, 100.0, 140.0])
        assert v.verdict == "improved"

    def test_jittery_series_classifies_noise(self):
        # Median 150, MAD 50: +20% is well within the series' own
        # variability (|z| < 1), so it must not flag as improved.
        v = classify_series([100.0, 200.0, 100.0, 200.0, 100.0, 200.0,
                             180.0])
        assert v.verdict == "noise"
        assert abs(v.z) < 3.5

    def test_slow_drift_escalates_to_degraded(self):
        # Each step is unremarkable vs the rolling median, but the
        # cumulative decline vs the best-ever exceeds the tolerance.
        v = classify_series([100.0, 98.0, 96.0, 94.0, 92.0, 90.0, 80.0])
        assert v.verdict == "degraded"
        assert "drift" in v.reason

    def test_lower_is_better_direction(self):
        v = classify_series([100.0, 100.0, 100.0, 60.0],
                            higher_is_better=False)
        assert v.verdict == "improved"

    def test_every_series_gets_a_verdict(self):
        history = [make_snapshot(_report(**{"a/b": 100, "c/d": 50}),
                                 timestamp=float(i), code="c")
                   for i in range(4)]
        verdicts = classify_history(history)
        assert {v.series for v in verdicts} == set(series_names(history))
        assert all(v.verdict in ("improved", "stable", "degraded", "noise")
                   for v in verdicts)


class TestClassifyDelta:
    def test_identical_is_stable(self):
        assert classify_delta(1.0, 1.0).verdict == "stable"
        assert classify_delta(0.0, 0.0).verdict == "stable"

    def test_sub_floor_change_is_noise(self):
        assert classify_delta(100.0, 100.5).verdict == "noise"

    def test_direction_aware_verdicts(self):
        assert classify_delta(1.0, 1.2).verdict == "improved"
        assert classify_delta(1.0, 0.8).verdict == "degraded"
        low = dict(higher_is_better=False)
        assert classify_delta(1.0, 0.8, **low).verdict == "improved"
        assert classify_delta(1.0, 1.2, **low).verdict == "degraded"

    def test_appearance_from_zero(self):
        assert classify_delta(0.0, 5.0).verdict == "improved"
        assert classify_delta(0.0, 5.0,
                              higher_is_better=False).verdict == "degraded"


class TestPerfCli:
    def run_cli(self, *argv):
        from repro.perf.__main__ import main

        return main(list(argv))

    def _seed(self, tmp_path, degrade=False):
        history = tmp_path / "h.jsonl"
        for i in range(4):
            cps = 70000
            if degrade and i == 3:
                cps = 40000
            append_snapshot(history, make_snapshot(
                _report(**{"baseline/gcc": cps}), timestamp=float(i),
                code=f"code{i}"))
        return history

    def test_append_and_check(self, tmp_path, capsys):
        report_path = tmp_path / "BENCH.json"
        report_path.write_text(json.dumps(_report(**{"a/b": 100})))
        history = tmp_path / "h.jsonl"
        rc = self.run_cli("append", "--report", str(report_path),
                          "--history", str(history),
                          "--timestamp", "42.0", "--code", "abc")
        assert rc == 0
        snaps = load_history(history)
        assert len(snaps) == 1 and snaps[0]["timestamp"] == 42.0

    def test_check_report_only_vs_gating(self, tmp_path, capsys):
        history = self._seed(tmp_path, degrade=True)
        assert self.run_cli("check", "--history", str(history)) == 0
        out = capsys.readouterr()
        assert "degraded" in out.out
        assert self.run_cli("check", "--history", str(history),
                            "--fail-on-degraded") == 1

    def test_check_healthy_history(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        assert self.run_cli("check", "--history", str(history),
                            "--fail-on-degraded") == 0
        assert "no degraded series" in capsys.readouterr().out

    def test_show_sparklines(self, tmp_path, capsys):
        history = self._seed(tmp_path)
        assert self.run_cli("show", "--history", str(history)) == 0
        out = capsys.readouterr().out
        assert "baseline/gcc" in out and "[" in out


# --------------------------------------------------------------- diffing

def _put(store, mhz, kind="baseline", bench="smoke", seed=None):
    spec = RunSpec(kind=kind, bench=bench,
                   clock=ClockPlan(base_mhz=mhz), seed=seed,
                   instructions=N, warmup=W)
    store.put(spec.cache_key(), spec, spec.execute(), elapsed_s=0.01)
    return spec


@pytest.fixture(scope="module")
def clock_store(tmp_path_factory):
    """Four records: two kinds at two clocks (one sim each, memoized)."""
    root = tmp_path_factory.mktemp("diff-store")
    store = ResultStore(root)
    for mhz in (400.0, 600.0):
        for kind in ("baseline", "flywheel"):
            _put(store, mhz, kind=kind)
    return store


class TestSelectors:
    def test_parse_key_value_conjunction(self):
        filters, label = parse_selector("kind=baseline,base_mhz=400", [])
        assert filters == {"kind": "baseline", "base_mhz": "400"}
        assert label == "kind=baseline,base_mhz=400"

    def test_bad_selectors_rejected(self):
        with pytest.raises(CampaignError):
            parse_selector("nonsense", [])
        with pytest.raises(CampaignError):
            parse_selector("color=red", [])
        with pytest.raises(CampaignError):
            parse_selector("", [])

    def test_latest_prev_resolve_code_timeline(self):
        records = [{"code": "aaa", "created": 1.0},
                   {"code": "bbb", "created": 2.0}]
        assert parse_selector("latest", records)[0] == {"code": "bbb"}
        assert parse_selector("prev", records)[0] == {"code": "aaa"}
        with pytest.raises(CampaignError):
            parse_selector("prev", records[:1])

    def test_select_filters_records(self, clock_store):
        records = list(clock_store.records())
        sel = select(records, "base_mhz=400")
        assert len(sel.records) == 2
        assert all(record_axes(r)["base_mhz"] == 400.0
                   for r in sel.records)
        both = select(records, "kind=flywheel")
        assert len(both.records) == 2


class TestDiff:
    def test_pairs_across_clock_axis(self, clock_store):
        records = list(clock_store.records())
        report = diff_records(select(records, "base_mhz=400"),
                              select(records, "base_mhz=600"))
        assert len(report["pairs"]) == 2          # one per kind
        assert not report["unpaired_a"] and not report["unpaired_b"]
        # Same cycles at both clocks -> IPC stable; the faster clock
        # finishes sooner -> time/EDP improve and must be flagged.
        for pair in report["pairs"]:
            assert pair["metrics"]["ipc"]["verdict"] == "stable"
            assert pair["metrics"]["time_ms"]["verdict"] == "improved"
        assert report["flagged"] >= 2

    def test_groups_only_varying_axes(self, clock_store):
        records = list(clock_store.records())
        report = diff_records(select(records, "base_mhz=400"),
                              select(records, "base_mhz=600"))
        assert "kind" in report["groups"]         # baseline vs flywheel
        assert "bench" not in report["groups"]    # only one bench
        kinds = {row["value"] for row in report["groups"]["kind"]}
        assert kinds == {"baseline", "flywheel"}

    def test_unpaired_records_surface(self, clock_store, tmp_path):
        store = ResultStore(tmp_path / "s")
        _put(store, 400.0, kind="baseline")
        _put(store, 600.0, kind="baseline")
        _put(store, 600.0, kind="flywheel")       # no 400MHz partner
        records = list(store.records())
        report = diff_records(select(records, "base_mhz=400"),
                              select(records, "base_mhz=600"))
        assert len(report["pairs"]) == 1
        assert len(report["unpaired_b"]) == 1
        assert "flywheel" in report["unpaired_b"][0]

    def test_unknown_metric_rejected(self, clock_store):
        records = list(clock_store.records())
        with pytest.raises(CampaignError):
            diff_records(select(records, "base_mhz=400"),
                         select(records, "base_mhz=600"),
                         metrics=("bogus",))

    def test_identical_selections_all_stable(self, clock_store):
        records = list(clock_store.records())
        sel = select(records, "base_mhz=400")
        report = diff_records(sel, sel)
        for pair in report["pairs"]:
            for cell in pair["metrics"].values():
                assert cell["verdict"] == "stable"
        assert report["flagged"] == 0


class TestDiffCli:
    def run_cli(self, *argv):
        from repro.campaign.__main__ import main

        return main(list(argv))

    def test_terminal_and_html(self, clock_store, tmp_path, capsys):
        html_path = tmp_path / "report.html"
        rc = self.run_cli("diff", "base_mhz=400", "base_mhz=600",
                          "--store", str(clock_store.root),
                          "--html", str(html_path))
        assert rc == 0
        out = capsys.readouterr().out
        assert "pair(s)" in out and "by kind" in out
        text = html_path.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert "baseline/smoke" in text

    def test_json_report(self, clock_store, capsys):
        rc = self.run_cli("diff", "base_mhz=400", "base_mhz=600",
                          "--store", str(clock_store.root), "--json")
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["pairs"]) == 2

    def test_no_match_fails_cleanly(self, clock_store, capsys):
        rc = self.run_cli("diff", "base_mhz=123", "base_mhz=600",
                          "--store", str(clock_store.root))
        assert rc == 1
        assert "matched no records" in capsys.readouterr().err

    def test_serve_requires_html(self, clock_store, capsys):
        rc = self.run_cli("diff", "base_mhz=400", "base_mhz=600",
                          "--store", str(clock_store.root), "--serve")
        assert rc == 1
        assert "--serve requires --html" in capsys.readouterr().err


# ------------------------------------------------- bench gate helpers

def _bench_module():
    path = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "bench_sim_speed.py"
    spec = importlib.util.spec_from_file_location("_bench_sim_speed", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchGateHelpers:
    def test_compare_speedups_rows(self):
        bench = _bench_module()
        fresh = {"turbo_speedup": {"baseline/gcc": 3.0}}
        committed = {"turbo_speedup": {"baseline/gcc": 3.5,
                                       "flywheel/gcc": 1.4}}
        rows = bench.compare_speedups(fresh, committed)
        by_name = {r["series"]: r for r in rows}
        assert by_name["baseline/gcc"]["delta_pct"] == pytest.approx(
            (3.0 - 3.5) / 3.5 * 100.0)
        # Committed-only series keeps a row (None delta), never dropped.
        assert by_name["flywheel/gcc"]["new"] is None
        assert by_name["flywheel/gcc"]["delta_pct"] is None

    def test_compare_speedups_empty_when_no_turbo(self):
        bench = _bench_module()
        assert bench.compare_speedups({}, {}) == []
