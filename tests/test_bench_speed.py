"""Pins for the ``bench_sim_speed`` measurement protocol.

The bench harness lives outside the package (``benchmarks/``), but its
measurement rules are correctness-bearing: the engine series must run
the *same machine* as the legacy series with only the backend swapped.
A bare ``CoreConfig(engine=...)`` silently dropped kind defaults — the
flywheel's 512-entry register file and second regread stage — which is
exactly the legacy-vs-turbo cycle divergence BENCH_core.json used to
carry (``flywheel/gcc``: 58249 vs 58156). The pin here compares cycles
*through the bench path* for every kind x engine leg, so a regression
in config plumbing shows up as a cycle mismatch, not as a quiet
throughput skew.

The speedup-table arithmetic is pinned separately on synthetic series
(no simulation), keeping the module cheap enough for the default
matrix.
"""

import sys
from pathlib import Path

import pytest

from repro.core.engine.turbo import HAVE_NUMPY

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import bench_sim_speed  # noqa: E402

turbo_required = pytest.mark.skipif(
    not HAVE_NUMPY, reason="turbo extra (NumPy) not installed")


@turbo_required
def test_engine_series_simulate_the_same_machine():
    """Every ``@engine`` series lands on the legacy series' cycles.

    This is the flywheel-divergence regression pin: the bench must
    derive engine configs from the kind's defaults (only the engine
    swapped), so identical machines produce identical cycle counts and
    the speedup tables compare like with like.
    """
    report = bench_sim_speed.measure(
        benchmarks=("smoke",), instructions=2000, warmup=500, repeats=1,
        engines=("legacy", "turbo", "vector"),
        membound_instructions=2000, membound_warmup=500)
    series = report["series"]
    legs = sorted(n for n in series if "@" in n)
    assert legs, "no engine series measured"
    for name in legs:
        base = name.split("@")[0]
        assert series[name]["cycles"] == series[base]["cycles"], (
            f"{name} simulated a different machine than {base}")
    # Both speedup tables exist and cover every base that has a leg.
    for engine in ("turbo", "vector"):
        table = report[f"{engine}_speedup"]
        bases = {n.split("@")[0] for n in legs if n.endswith(f"@{engine}")}
        assert set(table) == bases


class TestSpeedupTables:
    SERIES = {
        "baseline/gcc": {"cycles_per_sec": 1000},
        "baseline/gcc@turbo": {"cycles_per_sec": 4500},
        "baseline/gcc@vector": {"cycles_per_sec": 4600},
        "membound/pointer_chase": {"cycles_per_sec": 2000},
        "membound/pointer_chase@vector": {"cycles_per_sec": 5100},
        # A zero legacy denominator must be skipped, not divide.
        "broken/x": {"cycles_per_sec": 0},
        "broken/x@turbo": {"cycles_per_sec": 100},
    }

    def test_ratios_keyed_by_base_series(self):
        assert bench_sim_speed.engine_speedups(self.SERIES, "turbo") == {
            "baseline/gcc": 4.5}
        assert bench_sim_speed.engine_speedups(self.SERIES, "vector") == {
            "baseline/gcc": 4.6, "membound/pointer_chase": 2.55}

    def test_turbo_wrapper_and_missing_engine(self):
        assert (bench_sim_speed.turbo_speedups(self.SERIES)
                == bench_sim_speed.engine_speedups(self.SERIES, "turbo"))
        assert bench_sim_speed.engine_speedups(self.SERIES, "warp") == {}

    def test_compare_speedups_flags_shrinkage(self):
        fresh = {"turbo_speedup": {"a/b": 3.0}}
        committed = {"turbo_speedup": {"a/b": 4.0, "c/d": 2.0}}
        rows = bench_sim_speed.compare_speedups(fresh, committed)
        by_name = {r["series"]: r for r in rows}
        assert set(by_name) == {"a/b", "c/d"}
        # a/b shrank 25%; c/d vanished (None delta on the fresh side).
        row = by_name["a/b"]
        assert (row["old"], row["new"]) == (4.0, 3.0)
        assert row["delta_pct"] == pytest.approx(-25.0)
        assert by_name["c/d"]["new"] is None
        assert by_name["c/d"]["delta_pct"] is None
