"""Tests for the observability layer (PR 6): TraceSpec/TraceRecorder,
MetricRegistry, renderers, the self-profiler and the deadlock snapshot."""

import json

import pytest

from repro.core.config import CoreConfig
from repro.core.engine.watchdog import DeadlockWatchdog
from repro.core.sim import default_config, execute_kind
from repro.errors import ConfigError, DeadlockError
from repro.obs import (
    EVENT_KINDS,
    STALL_REASONS,
    MetricRegistry,
    TraceRecorder,
    TraceSpec,
    chrome_trace,
    render_pipeview,
)
from repro.core.engine.turbo import HAVE_NUMPY
from repro.obs.profiler import PHASES, profile_machine

#: Tiny budgets: every simulated run in this file finishes in ~100ms.
N, W = 1500, 500

turbo_required = pytest.mark.skipif(
    not HAVE_NUMPY, reason="turbo extra (NumPy) not installed")

ALL_KINDS = ("baseline", "pipelined_wakeup", "flywheel")


def traced(kind, bench="smoke", spec=None, n=N, w=W, **trace_kw):
    trace_kw.setdefault("buffer", 65536)
    config = default_config(kind).with_variant(
        trace=spec or TraceSpec(**trace_kw))
    return execute_kind(kind, bench, config=config,
                        max_instructions=n, warmup=w)


# --------------------------------------------------------------- TraceSpec


class TestTraceSpec:
    def test_defaults(self):
        spec = TraceSpec()
        assert spec.buffer == 65536
        assert spec.events == ()
        assert spec.start == 0 and spec.stop == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceSpec(buffer=0)
        with pytest.raises(ConfigError):
            TraceSpec(start=-1)
        with pytest.raises(ConfigError):
            TraceSpec(start=100, stop=50)
        with pytest.raises(ConfigError):
            TraceSpec(events=("fetch", "nonesuch"))

    def test_round_trip(self):
        spec = TraceSpec(buffer=128, events=("issue", "retire"),
                         start=10, stop=500)
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_core_config_rebuilds_dict_payload(self):
        cfg = CoreConfig(trace={"buffer": 256, "events": ["stall"]})
        assert isinstance(cfg.trace, TraceSpec)
        assert cfg.trace.buffer == 256
        assert cfg.trace.events == ("stall",)

    def test_stall_reasons_are_documented_taxonomy(self):
        assert set(STALL_REASONS) >= {"rob_full", "iw_full", "lsq_full",
                                      "pool_full", "mshr_full", "fu_busy",
                                      "dep_wait"}


# ----------------------------------------------------------- TraceRecorder


class TestTraceRecorder:
    def test_ring_bounds_and_dropped(self):
        rec = TraceRecorder(TraceSpec(buffer=4))
        for c in range(10):
            rec.emit(c, "fetch", c)
        assert rec.emitted == 10
        assert len(rec.events) == 4
        assert rec.dropped == 6
        assert [ev[0] for ev in rec.events] == [6, 7, 8, 9]

    def test_event_mask(self):
        rec = TraceRecorder(TraceSpec(buffer=16, events=("retire",)))
        rec.emit(1, "fetch", 0)
        rec.emit(2, "retire", 0)
        assert [ev[1] for ev in rec.events] == ["retire"]
        assert rec.wants("retire") and not rec.wants("fetch")

    def test_cycle_window(self):
        rec = TraceRecorder(TraceSpec(buffer=16, start=5, stop=8))
        for c in range(12):
            rec.emit(c, "issue", c)
        assert [ev[0] for ev in rec.events] == [5, 6, 7]
        assert rec.active(5) and not rec.active(8)

    def test_window_filters_last_cycles(self):
        rec = TraceRecorder(TraceSpec(buffer=64))
        for c in (1, 50, 90, 99, 100):
            rec.emit(c, "retire", c)
        tail = rec.window(10)
        assert [ev[0] for ev in tail] == [99, 100]

    def test_serialize_is_json_safe(self):
        rec = TraceRecorder(TraceSpec(buffer=8))
        rec.emit(3, "stall", -1, "rob_full")
        payload = rec.serialize()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["events"] == [[3, "stall", -1, "rob_full"]]


# ---------------------------------------------------------- MetricRegistry


class TestMetricRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricRegistry()
        reg.counter("a.count").inc(3)
        reg.gauge("a.depth", lambda: 7)
        hist = reg.histogram("a.lat", bounds=(1, 4))
        for v in (0, 2, 9):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["a.count"] == 3
        assert snap["a.depth"] == 7
        assert snap["a.lat"]["counts"] == [1, 1, 1]
        assert snap["a.lat"]["total"] == 3
        assert list(snap) == sorted(snap)

    def test_source_flattening(self):
        reg = MetricRegistry()
        reg.source("mem", lambda: {"l1d": {"hits": 5}, "mshr": None})
        snap = reg.snapshot()
        assert snap["mem.l1d.hits"] == 5
        assert snap["mem.mshr"] is None

    def test_interval_deltas(self):
        reg = MetricRegistry()
        c = reg.counter("n")
        reg.gauge("g", lambda: 42)
        c.inc(5)
        first = reg.interval()
        assert first == {"n": 5, "g": 42}
        c.inc(2)
        second = reg.interval()
        assert second == {"n": 2, "g": 42}   # counter delta, gauge absolute

    def test_snapshot_round_trips_through_json(self):
        result = execute_kind("baseline", "smoke", max_instructions=N,
                              warmup=W)
        metrics = result.stats.metrics
        assert metrics["engine.committed"] >= N
        assert json.loads(json.dumps(metrics)) == metrics


# --------------------------------------------------------- traced machines


class TestTracedRuns:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_lifecycle_events_recorded(self, kind):
        result = traced(kind)
        events = result.trace["events"]
        kinds = {ev[1] for ev in events}
        # Decode is FE-domain-only on the flywheel (no BE-axis stamp).
        expected = {"fetch", "rename", "dispatch", "issue", "complete",
                    "retire"}
        assert expected <= kinds
        for cycle, ev_kind, seq, _info in events:
            assert ev_kind in EVENT_KINDS
            assert cycle >= 0
            assert seq >= -1

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_tracing_off_is_bit_identical(self, kind):
        plain = execute_kind(kind, "smoke", max_instructions=N, warmup=W)
        full = traced(kind)
        assert plain.trace is None and full.trace is not None
        a, b = plain.stats.to_dict(), full.stats.to_dict()
        # The only permitted difference: the recorder's own bookkeeping
        # source, present exactly when the recorder is armed.
        b["metrics"] = {k: v for k, v in b["metrics"].items()
                        if not k.startswith("trace.")}
        assert a == b

    def test_untraced_result_dict_has_no_trace_key(self):
        plain = execute_kind("baseline", "smoke", max_instructions=N,
                             warmup=W)
        assert "trace" not in plain.to_dict()

    def test_stall_events_corroborated_by_counters(self):
        result = traced("flywheel", bench="gcc", n=3000, w=1000)
        stalls = [ev for ev in result.trace["events"] if ev[1] == "stall"]
        pool = sum(1 for ev in stalls if ev[3] == "pool_full")
        assert result.stats.rename_pool_stalls > 0
        # 1:1 — every pool-stall increment emits exactly one event, and
        # the buffer/window cover the whole run.
        assert pool == result.stats.rename_pool_stalls
        for ev in stalls:
            assert ev[3] in STALL_REASONS

    def test_mem_events_on_general_path(self):
        from repro.mem import MemorySpec

        config = default_config("baseline").with_variant(
            mem=MemorySpec(mshrs=4), trace=TraceSpec(buffer=65536))
        result = execute_kind("baseline", "pointer_chase", config=config,
                              max_instructions=2000, warmup=500)
        kinds = {ev[1] for ev in result.trace["events"]}
        assert "mem" in kinds

    def test_clock_events_on_retune(self):
        from repro.core.config import ClockPlan
        from repro.dvfs import GovernorConfig

        config = default_config("baseline").with_variant(
            trace=TraceSpec(buffer=65536))
        clock = ClockPlan(governor=GovernorConfig(
            name="occupancy", interval=200))
        result = execute_kind("baseline", "gcc", config=config, clock=clock,
                              max_instructions=4000, warmup=1000)
        clocks = [ev for ev in result.trace["events"] if ev[1] == "clock"]
        assert len(clocks) == result.stats.dvfs_retunes
        if clocks:
            assert all(isinstance(ev[3], float) for ev in clocks)


# --------------------------------------------------------------- renderers


class TestRenderers:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_pipeview_renders(self, kind):
        result = traced(kind)
        out = render_pipeview(result.trace["events"], stop=200)
        assert "pipeview" in out
        lines = [ln for ln in out.splitlines() if "|" in ln]
        assert lines, out
        # Issue marker appears somewhere in the Gantt body.
        assert any("I" in ln.split("|", 1)[1] for ln in lines)

    def test_pipeview_empty_window(self):
        assert "no lifecycle events" in render_pipeview([])

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_chrome_trace_is_valid(self, kind, tmp_path):
        result = traced(kind)
        payload = chrome_trace(result.trace["events"], label=kind)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        events = loaded["traceEvents"]
        assert events
        for ev in events:
            assert ev["ph"] in ("M", "X", "i", "C")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_chrome_trace_stall_instants(self):
        result = traced("baseline", bench="gcc", n=3000, w=1000)
        payload = chrome_trace(result.trace["events"], label="x")
        instants = [ev for ev in payload["traceEvents"] if ev["ph"] == "i"]
        assert any(ev["name"].startswith("stall:") for ev in instants)


# ---------------------------------------------------------------- profiler


class TestProfiler:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_profile_report_shape(self, kind):
        report = profile_machine(kind, "smoke", instructions=N, warmup=W)
        prof = report["profile"]
        assert set(prof["phases_s"]) == set(PHASES)
        assert prof["run_s"] > 0
        assert report["cycles"] > 0
        for phase in PHASES:
            assert prof["phases_s"][phase] >= 0

    def test_profiled_stats_match_plain_run(self):
        # The wrapped step must be behaviourally identical: same cycles,
        # same committed count, same issue totals as an unwrapped run.
        plain = execute_kind("baseline", "smoke", max_instructions=N,
                             warmup=W)
        report = profile_machine("baseline", "smoke", instructions=N,
                                 warmup=W)
        assert report["cycles"] == plain.stats.total_be_cycles
        assert report["instructions"] == N

    @turbo_required
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_profile_turbo_engine_buckets(self, kind):
        # The turbo backend has no stage ticks to wrap; its profile must
        # report the pool/loop buckets with real (non-zero) loop time,
        # not a legacy-shaped report of silent zeros.
        from repro.core.sim import default_config
        from repro.obs.profiler import TURBO_PHASES

        config = default_config(kind).with_variant(engine="turbo")
        report = profile_machine(kind, "smoke", config=config,
                                 instructions=N, warmup=W)
        prof = report["profile"]
        assert set(prof["phases_s"]) == set(TURBO_PHASES)
        assert prof["phases_s"]["loop"] > 0
        assert prof["ticks"] > 0
        assert report["cycles"] > 0

    @turbo_required
    def test_profile_turbo_matches_plain_turbo_run(self):
        from repro.core.sim import default_config

        config = default_config("baseline").with_variant(engine="turbo")
        plain = execute_kind("baseline", "smoke", config=config,
                             max_instructions=N, warmup=W)
        report = profile_machine("baseline", "smoke", config=config,
                                 instructions=N, warmup=W)
        assert report["cycles"] == plain.stats.total_be_cycles


# -------------------------------------------------------- deadlock snapshot


class TestDeadlockSnapshot:
    def test_watchdog_attaches_snapshot(self):
        dog = DeadlockWatchdog(window=10)
        with pytest.raises(DeadlockError) as err:
            dog.trip(99, 5, snapshot=lambda: {"rob": {"occupancy": 3}})
        assert err.value.snapshot["rob"] == {"occupancy": 3}
        assert err.value.snapshot["cycle"] == 99
        assert err.value.snapshot["committed"] == 5

    def test_watchdog_without_snapshot_still_structured(self):
        dog = DeadlockWatchdog(window=10)
        with pytest.raises(DeadlockError) as err:
            dog.trip(42, 7)
        assert err.value.snapshot == {"cycle": 42, "committed": 7}

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_core_snapshot_shape(self, kind):
        result = traced(kind)
        snap = result.core._deadlock_snapshot()
        for key in ("core", "cycle", "committed", "rob", "lsq", "iw",
                    "oldest", "trace_window"):
            assert key in snap, key
        assert snap["rob"]["capacity"] > 0
        assert isinstance(snap["trace_window"], list)
        # Snapshot must be JSON-safe: it rides on a raised error that
        # tooling may want to dump.
        json.dumps(snap)

    def test_untr_core_snapshot_has_no_window(self):
        result = execute_kind("baseline", "smoke", max_instructions=N,
                              warmup=W)
        snap = result.core._deadlock_snapshot()
        assert "trace_window" not in snap
