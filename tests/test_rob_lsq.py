"""Unit tests for the reorder buffer and load/store queue."""

import pytest

from repro.errors import SimulationError
from repro.execute.lsq import LoadStoreQueue
from repro.isa import DynInstr, OpClass
from repro.rob.reorder_buffer import ReorderBuffer, RobEntry


def _entry(seq, mem=False):
    dyn = DynInstr(seq=seq, pc=seq * 4, op=OpClass.LOAD if mem else OpClass.INT_ALU,
                   dest=5, srcs=(), sid=seq,
                   mem_addr=0x1000 if mem else None)
    return RobEntry(dyn)


class TestRob:
    def test_in_order_retirement(self):
        rob = ReorderBuffer(8)
        a, b = _entry(0), _entry(1)
        rob.insert(a)
        rob.insert(b)
        b.done = True
        assert rob.retire_ready(4) == []    # head not done
        a.done = True
        assert rob.retire_ready(4) == [a, b]

    def test_width_limit(self):
        rob = ReorderBuffer(8)
        entries = [_entry(i) for i in range(6)]
        for e in entries:
            rob.insert(e)
            e.done = True
        assert len(rob.retire_ready(4)) == 4
        assert len(rob.retire_ready(4)) == 2

    def test_overflow(self):
        rob = ReorderBuffer(2)
        rob.insert(_entry(0))
        rob.insert(_entry(1))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.insert(_entry(2))

    def test_flush(self):
        rob = ReorderBuffer(4)
        rob.insert(_entry(0))
        rob.flush()
        assert rob.empty

    def test_is_mem_flag(self):
        assert _entry(0, mem=True).is_mem
        assert not _entry(0).is_mem


class TestLsq:
    def test_capacity(self):
        lsq = LoadStoreQueue(2)
        lsq.insert()
        lsq.insert()
        assert lsq.full
        with pytest.raises(SimulationError):
            lsq.insert()

    def test_release(self):
        lsq = LoadStoreQueue(2)
        lsq.insert()
        lsq.release()
        assert len(lsq) == 0
        with pytest.raises(SimulationError):
            lsq.release()

    def test_flush(self):
        lsq = LoadStoreQueue(4)
        lsq.insert()
        lsq.flush()
        assert len(lsq) == 0
