"""Tests for the high-level simulation API and package surface."""

import pytest

import repro
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import run_baseline, run_flywheel
from repro.errors import ConfigError
from repro.workloads import generate_program, get_profile


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestRunApi:
    def test_accepts_benchmark_name(self):
        res = run_baseline("smoke", max_instructions=2000, warmup=500)
        assert res.name == "smoke"
        assert res.stats.committed >= 2000

    def test_accepts_profile(self):
        res = run_baseline(get_profile("smoke"), max_instructions=2000,
                           warmup=500)
        assert res.stats.committed >= 2000

    def test_accepts_prebuilt_program(self):
        prog = generate_program(get_profile("smoke"))
        res = run_flywheel(prog, max_instructions=2000, warmup=500)
        assert res.stats.committed >= 2000

    def test_sim_time_scales_with_clock(self):
        slow = run_baseline("smoke", clock=ClockPlan(base_mhz=950),
                            max_instructions=3000, warmup=500)
        fast = run_baseline("smoke", clock=ClockPlan(base_mhz=1900),
                            max_instructions=3000, warmup=500)
        # Same cycle count, half the period.
        assert fast.stats.sim_time_ps == pytest.approx(
            slow.stats.sim_time_ps / 2, rel=0.01)

    def test_seed_changes_result(self):
        a = run_baseline("smoke", max_instructions=3000, warmup=500, seed=1)
        b = run_baseline("smoke", max_instructions=3000, warmup=500, seed=2)
        assert a.stats.total_be_cycles != b.stats.total_be_cycles


class TestConfigValidation:
    def test_bad_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0)

    def test_too_few_phys_regs(self):
        with pytest.raises(ConfigError):
            CoreConfig(phys_regs=32)

    def test_iw_smaller_than_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(iw_entries=2, issue_width=6)

    def test_with_variant(self):
        cfg = CoreConfig().with_variant(wakeup_extra_delay=1)
        assert cfg.wakeup_extra_delay == 1
        assert cfg.iw_entries == 128

    def test_clock_plan_percentages(self):
        plan = ClockPlan(base_mhz=1000, fe_speedup=1.0, be_speedup=0.5)
        assert plan.fe_mhz == pytest.approx(2000)
        assert plan.be_mhz == pytest.approx(1000)
        assert plan.be_fast_mhz == pytest.approx(1500)

    def test_ec_blocks_derived(self):
        fly = FlywheelConfig(ec_kb=128, ec_block_slots=8,
                             ec_bytes_per_slot=8)
        assert fly.ec_blocks == 2048


class TestDualClockVariants:
    def test_delay_network_variant_runs(self):
        from repro.core.flywheel import FlywheelCore
        from repro.workloads import InstructionStream
        prog = generate_program(get_profile("smoke"))
        core = FlywheelCore(CoreConfig(phys_regs=512, regread_stages=2),
                            FlywheelConfig(), ClockPlan(fe_speedup=0.5),
                            InstructionStream(prog))
        core.iw.delay_network = True
        stats = core.run(3000, warmup=500)
        assert stats.committed >= 3000

    def test_faster_fe_changes_cycle_split(self):
        eq = run_flywheel("smoke", clock=ClockPlan(fe_speedup=0.0),
                          max_instructions=3000, warmup=500)
        fast = run_flywheel("smoke", clock=ClockPlan(fe_speedup=1.0),
                            max_instructions=3000, warmup=500)
        # A 2x front-end clock ticks ~2x as often per unit time.
        fe_ratio = ((fast.stats.fe_cycles_active + fast.stats.fe_cycles_gated)
                    / max(1, fast.stats.total_be_cycles))
        eq_ratio = ((eq.stats.fe_cycles_active + eq.stats.fe_cycles_gated)
                    / max(1, eq.stats.total_be_cycles))
        assert fe_ratio > 1.5 * eq_ratio
