"""Analysis/report layer: markdown tables, frequency-trace and cache
rendering, sparklines, diff-report grouping, the self-contained HTML
renderer, and the obs metric-snapshot delta helper."""

from html.parser import HTMLParser

from repro.analysis.htmlreport import group_delta_rows, render_diff_html
from repro.analysis.report import (
    cache_stats_rows,
    format_cache_stats,
    format_freq_trace,
    freq_trace_rows,
    markdown_table,
    sparkline,
)
from repro.core.stats import SimStats
from repro.obs.metrics import metrics_delta


def _stats(**kw):
    return SimStats(**kw)


class TestMarkdownTable:
    def test_renders_floats_and_missing_cells(self):
        text = markdown_table([{"a": 1.23456, "b": "x"}, {"a": 2.0}],
                              ["a", "b"])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1.235 | x |"
        assert lines[3] == "| 2.000 |  |"


class TestFreqTrace:
    def test_rows_compute_dwell(self):
        stats = _stats(be_cycles_execute=1000,
                       freq_trace=[[0, 400.0], [300, 600.0], [700, 500.0]])
        rows = freq_trace_rows(stats)
        assert [r["dwell"] for r in rows] == [300, 400, 300]
        assert rows[1] == {"cycle": 300, "mhz": 600.0, "dwell": 400}

    def test_rows_limit(self):
        stats = _stats(be_cycles_execute=100,
                       freq_trace=[[i * 10, 400.0] for i in range(6)])
        assert len(freq_trace_rows(stats, limit=2)) == 2

    def test_format_without_governor(self):
        assert format_freq_trace(_stats()) == "no governor (fixed clock)"

    def test_format_with_trace(self):
        stats = _stats(dvfs_retunes=2,
                       freq_trace=[[0, 400.0], [10, 600.0], [20, 500.0]])
        text = format_freq_trace(stats)
        assert "0:400" in text and "10:600" in text
        assert "(2 retunes)" in text
        assert "[" in text and "]" in text

    def test_format_truncates_long_traces(self):
        stats = _stats(freq_trace=[[i, 400.0] for i in range(12)])
        assert "+4 more" in format_freq_trace(stats, max_entries=8)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_renders_low_bars(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_min_max_hit_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_max_points_truncates(self):
        assert len(sparkline(list(range(100)), max_points=10)) == 10


class TestCacheStats:
    def _stats(self):
        return _stats_with_cache()

    def test_rows_per_level_and_mshr_pseudo_row(self):
        stats = _stats_with_cache()
        rows = {r["level"]: r for r in cache_stats_rows(stats)}
        assert rows["l1d"]["hit_rate"] == 0.75
        assert rows["l1d"]["prefetches"] == 3
        assert rows["mshr"]["occupancy_avg"] == 2.5
        assert rows["mshr"]["stall_cycles"] == 40
        assert rows["mshr"]["accesses"] == 7       # alloc count

    def test_zero_access_level_has_zero_hit_rate(self):
        stats = _stats(cache_stats={"l2": {"accesses": 0, "hits": 0}})
        assert cache_stats_rows(stats)[0]["hit_rate"] == 0.0

    def test_format_summary_line(self):
        text = format_cache_stats(_stats_with_cache())
        assert "l1d 75.0%" in text
        assert "mshr avg 2.5 peak 4 (40 stall cyc)" in text

    def test_format_empty(self):
        assert format_cache_stats(_stats()) == ""


def _stats_with_cache():
    return _stats(cache_stats={
        "l1d": {"accesses": 100, "hits": 75, "prefetches": 3,
                "writebacks": 2},
        "mshr": {"allocs": 7, "occupancy_avg": 2.5, "peak": 4,
                 "stall_cycles": 40},
    })


class TestMetricsDelta:
    def test_changed_numeric_metrics_sorted_by_rel(self):
        a = {"x": 100, "y": 10, "label": "foo", "flag": True}
        b = {"x": 101, "y": 20, "label": "bar", "flag": True}
        rows = metrics_delta(a, b)
        assert [r["metric"] for r in rows] == ["y", "x"]   # 100% before 1%
        assert rows[0]["delta"] == 10 and rows[0]["rel"] == 1.0

    def test_one_sided_metrics_sort_last_with_none_rel(self):
        rows = metrics_delta({"gone": 5}, {"new": 7})
        assert [r["metric"] for r in rows] == ["gone", "new"]
        assert all(r["rel"] is None for r in rows)
        assert rows[1]["a"] is None and rows[1]["b"] == 7

    def test_unchanged_and_non_numeric_dropped(self):
        assert metrics_delta({"x": 1, "h": {"a": 1}}, {"x": 1, "h": {}}) == []

    def test_limit(self):
        a = {str(i): 10 for i in range(5)}
        b = {str(i): 10 + i + 1 for i in range(5)}
        assert len(metrics_delta(a, b, limit=2)) == 2


def _fake_pair(kind="baseline", ipc_rel=0.1, verdict="improved"):
    return {
        "label": f"{kind}/smoke 400MHz",
        "axes": {"kind": kind, "bench": "smoke", "clock": "400MHz",
                 "gov": "", "mem": "", "engine": "legacy"},
        "a_key": "a" * 16, "b_key": "b" * 16,
        "metrics": {"ipc": {"a": 1.0, "b": 1.0 + ipc_rel, "rel": ipc_rel,
                            "verdict": verdict, "z": None,
                            "outlier": False}},
        "a_stats": {}, "b_stats": {},
    }


class TestGroupDeltaRows:
    def test_counts_and_median(self):
        pairs = [_fake_pair("baseline", 0.10, "improved"),
                 _fake_pair("baseline", 0.20, "improved"),
                 _fake_pair("flywheel", 0.0, "stable")]
        rows = {r["value"]: r for r in group_delta_rows(pairs, "kind")}
        base = rows["baseline"]
        assert base["pairs"] == 2
        assert base["ipc_rel_median"] == 0.15000000000000002 or \
            abs(base["ipc_rel_median"] - 0.15) < 1e-12
        assert base["improved"] == 2 and base["degraded"] == 0
        assert rows["flywheel"]["stable"] == 1
        assert rows["flywheel"]["ipc_rel_median"] == 0.0

    def test_missing_ipc_yields_none_median(self):
        pair = _fake_pair()
        pair["metrics"] = {"edp": {"a": 1.0, "b": 2.0, "rel": 1.0,
                                   "verdict": "degraded"}}
        row = group_delta_rows([pair], "kind")[0]
        assert row["ipc_rel_median"] is None
        assert row["degraded"] == 1

    def test_empty_axis_value_groups_under_blank(self):
        pair = _fake_pair()
        pair["axes"]["gov"] = ""
        assert group_delta_rows([pair], "gov")[0]["value"] == ""


class _TagCounter(HTMLParser):
    def __init__(self):
        super().__init__()
        self.tags = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)

    def error(self, message):            # pragma: no cover - py<3.10 hook
        self.errors.append(message)


def _fake_report():
    pairs = [_fake_pair("baseline", 0.10, "improved"),
             _fake_pair("flywheel", -0.05, "degraded")]
    return {
        "a": {"selector": "base_mhz=400", "count": 2, "codes": ["aaa111"]},
        "b": {"selector": "base_mhz=600", "count": 2, "codes": ["aaa111"]},
        "metrics": ["ipc"],
        "min_rel": 0.02,
        "pairs": pairs,
        "unpaired_a": [],
        "unpaired_b": ["pipelined/smoke 600MHz"],
        "groups": {"kind": group_delta_rows(pairs, "kind")},
        "flagged": 2,
    }


class TestRenderDiffHtml:
    def test_document_parses_and_carries_content(self):
        html = render_diff_html(_fake_report(), title="T<itle>")
        parser = _TagCounter()
        parser.feed(html)
        parser.close()
        assert not parser.errors
        assert parser.tags.count("html") == 1
        assert "table" in parser.tags and "details" in parser.tags
        assert "T&lt;itle&gt;" in html            # title is escaped
        assert "baseline/smoke 400MHz" in html
        assert "only in B: pipelined/smoke 600MHz" in html
        assert "<script" not in html.lower()      # self-contained, inert

    def test_verdict_chips_and_empty_stats_fallbacks(self):
        html = render_diff_html(_fake_report())
        assert 'class="chip imp"' in html
        assert 'class="chip deg"' in html
        assert "fixed clock" in html              # empty freq trace
        assert "no cache stats recorded" in html
        assert "no metric snapshot deltas" in html
