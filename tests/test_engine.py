"""Tests for the shared pipeline engine and the pipelined-wakeup kind."""

import pytest

from repro.core.config import CoreConfig
from repro.core.engine import DeadlockWatchdog
from repro.core.pipelined import PipelinedWakeupCore
from repro.core.sim import (
    KIND_PIPELINED_WAKEUP,
    run_baseline,
    run_pipelined_wakeup,
)
from repro.errors import CampaignError, ConfigError, SimulationError
from repro.workloads import InstructionStream, generate_program, get_profile


class TestDeadlockWatchdog:
    def test_progress_resets_window(self):
        wd = DeadlockWatchdog(100)
        for cycle in range(0, 1000, 50):
            wd.poll(cycle, committed=cycle)   # always making progress

    def test_trips_after_window(self):
        wd = DeadlockWatchdog(100)
        wd.poll(0, committed=5)
        wd.poll(100, committed=5)
        with pytest.raises(SimulationError, match="no commit for 100"):
            wd.poll(101, committed=5)

    def test_describe_suffix(self):
        wd = DeadlockWatchdog(10)
        wd.poll(0, committed=0)
        with pytest.raises(SimulationError, match="custom-detail"):
            wd.poll(11, committed=0, describe=lambda: " custom-detail")

    def test_rejects_bad_window(self):
        with pytest.raises(SimulationError):
            DeadlockWatchdog(0)


class TestDeadlockWindowConfig:
    def test_default_is_kind_specific(self):
        from repro.core.baseline import BaselineCore
        from repro.core.flywheel import FlywheelCore
        from repro.core.config import ClockPlan, FlywheelConfig

        prog = generate_program(get_profile("smoke"))
        base = BaselineCore(CoreConfig(), InstructionStream(prog))
        assert base.watchdog.window == 20_000
        fly = FlywheelCore(CoreConfig(phys_regs=512, regread_stages=2),
                           FlywheelConfig(), ClockPlan(),
                           InstructionStream(prog))
        assert fly.watchdog.window == 40_000

    def test_override_applies(self):
        from repro.core.baseline import BaselineCore

        prog = generate_program(get_profile("smoke"))
        core = BaselineCore(CoreConfig(deadlock_window=123),
                            InstructionStream(prog))
        assert core.watchdog.window == 123

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(deadlock_window=-1)


class TestPipelinedWakeupKind:
    def test_runs_and_commits(self):
        res = run_pipelined_wakeup("smoke", max_instructions=3000,
                                   warmup=500)
        assert res.kind == KIND_PIPELINED_WAKEUP
        assert res.stats.committed >= 3000

    def test_forces_pipelined_wakeup(self):
        prog = generate_program(get_profile("smoke"))
        core = PipelinedWakeupCore(CoreConfig(), InstructionStream(prog))
        assert core.config.wakeup_extra_delay == 1

    def test_matches_baseline_with_override(self):
        """The kind is exactly the baseline with the loop pipelined."""
        via_kind = run_pipelined_wakeup("gcc", max_instructions=4000,
                                        warmup=1000)
        via_config = run_baseline(
            "gcc", config=CoreConfig(wakeup_extra_delay=1),
            max_instructions=4000, warmup=1000)
        assert (via_kind.stats.total_be_cycles
                == via_config.stats.total_be_cycles)
        assert via_kind.stats.issued == via_config.stats.issued

    def test_slower_than_baseline(self):
        base = run_baseline("gcc", max_instructions=6000, warmup=2000)
        ws = run_pipelined_wakeup("gcc", max_instructions=6000, warmup=2000)
        assert ws.stats.ipc < base.stats.ipc

    def test_campaign_spec_round_trip(self):
        from repro.campaign.spec import RunSpec

        spec = RunSpec(kind=KIND_PIPELINED_WAKEUP, bench="gcc",
                       instructions=2000, warmup=100)
        assert spec.config.wakeup_extra_delay == 1
        assert spec.variant() == {}          # the kind default, not a diff
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_key() == spec.cache_key()

    def test_spec_rejects_fly_config(self):
        from repro.campaign.spec import RunSpec
        from repro.core.config import FlywheelConfig

        with pytest.raises(CampaignError):
            RunSpec(kind=KIND_PIPELINED_WAKEUP, bench="gcc",
                    fly=FlywheelConfig())

    def test_spec_executes(self):
        from repro.campaign.spec import RunSpec

        spec = RunSpec(kind=KIND_PIPELINED_WAKEUP, bench="smoke",
                       instructions=1500, warmup=200)
        result = spec.execute()
        assert result.kind == KIND_PIPELINED_WAKEUP
        assert result.stats.committed >= 1500


class TestEngineComposition:
    def test_cores_share_engine_structures(self):
        """The re-exposed rob/lsq/fu aliases are the engine's objects."""
        from repro.core.baseline import BaselineCore

        prog = generate_program(get_profile("smoke"))
        core = BaselineCore(CoreConfig(), InstructionStream(prog))
        assert core.rob is core.be.rob
        assert core.lsq is core.be.lsq
        assert core.fu is core.be.fu

    def test_backend_events_drain(self):
        """After a run stops, no wake/done event is stranded in the past."""
        from repro.core.baseline import BaselineCore

        prog = generate_program(get_profile("smoke"))
        core = BaselineCore(CoreConfig(), InstructionStream(prog))
        core.run(2000, warmup=500)
        for cyc in core.be.wake_events:
            assert cyc >= core.cycle
        for cyc in core.be.done_events:
            assert cyc >= core.cycle
