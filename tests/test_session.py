"""Tests for the MachineSpec + Session front door and the core-kind
registry (PR 4 API redesign)."""

import warnings

import pytest

import repro
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig, stable_hash
from repro.core.registry import (
    get_kind,
    is_registered,
    kind_names,
    register_kind,
    unregister_kind,
)
from repro.dvfs import GovernorConfig
from repro.errors import CampaignError, ConfigError, WorkloadError
from repro.session import MachineSpec, Session, SessionEvent, default_session

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500


def ms(kind="baseline", bench="smoke", **kw):
    kw.setdefault("instructions", N)
    kw.setdefault("warmup", W)
    return MachineSpec(kind=kind, bench=bench, **kw)


# ------------------------------------------------------------- MachineSpec


class TestMachineSpec:
    def test_normalizes_like_run_spec(self):
        assert ms() == ms(config=CoreConfig(), clock=ClockPlan())
        fly = ms(kind="flywheel")
        assert fly.fly == FlywheelConfig()
        assert fly.config == CoreConfig(phys_regs=512, regread_stages=2)
        # Sync kinds drop the clock speedup axes, like RunSpec does.
        assert ms(clock=ClockPlan(fe_speedup=0.5)) == ms()

    def test_validation_matches_campaign_layer(self):
        with pytest.raises(CampaignError):
            ms(kind="turbo")
        with pytest.raises(WorkloadError):
            ms(bench="nonesuch")
        with pytest.raises(CampaignError):
            ms(kind="baseline", fly=FlywheelConfig())

    def test_round_trip_with_run_spec_keeps_cache_key(self):
        for spec in (
            ms(),
            ms(kind="flywheel", clock=ClockPlan(fe_speedup=0.25),
               fly=FlywheelConfig(ec_kb=64), seed=9, mem_scale=1.5),
            ms(kind="pipelined_wakeup", seed=3),
        ):
            run = spec.run_spec()
            assert isinstance(run, RunSpec)
            back = MachineSpec.from_run_spec(run)
            assert back == spec
            assert (spec.cache_key() == run.cache_key()
                    == back.cache_key())

    def test_payload_hashes_pinned_against_pr3(self):
        """The projection did not change the content-address function.

        These hashes were captured by running ``stable_hash(
        RunSpec(...).payload(), length=40)`` on the PR 3 tree; a spec
        written via MachineSpec today must project to byte-identical
        payloads (the cache key then only differs by the code
        fingerprint, which any simulator change rotates by design).
        """
        pins = {
            MachineSpec("baseline", "smoke"):
                "1ddc31b9996170e5e7cba93267faa41db38caf82",
            MachineSpec("pipelined_wakeup", "gcc"):
                "bdd997dcb53dac9f45c606ace4a3abfeb30b97bb",
            MachineSpec("flywheel", "gcc",
                        clock=ClockPlan(fe_speedup=1.0, be_speedup=0.5)):
                "5bd93d2a3c5099982974130d6f3c6eb1fabc3692",
            MachineSpec("flywheel", "vortex",
                        clock=ClockPlan(fe_speedup=1.0, be_speedup=0.5,
                                        governor=GovernorConfig(
                                            name="ipc_ladder",
                                            interval=500)),
                        fly=FlywheelConfig(ec_kb=64), seed=7,
                        instructions=2000, warmup=500, mem_scale=2.0):
                "e2a73e843447bac2d18cfd68508e0fc676614d52",
            MachineSpec("baseline", "gcc",
                        config=CoreConfig(iw_entries=64), seed=3):
                "68631c2dec990d0347b8a5d264bf5d47978cc697",
        }
        for spec, expected in pins.items():
            assert stable_hash(spec.run_spec().payload(),
                               length=40) == expected

    def test_replace_and_serialization(self):
        spec = ms(kind="flywheel", seed=1)
        other = spec.replace(seed=2)
        assert other.seed == 2 and other.kind == "flywheel"
        assert other != spec
        back = MachineSpec.from_dict(spec.to_dict())
        assert back == spec

    def test_replace_kind_resets_kind_normalized_axes(self):
        # The baseline-normalized config must not leak into the new
        # kind; the replaced spec equals one written from scratch.
        spec = ms().replace(kind="flywheel")
        assert spec == ms(kind="flywheel")
        assert spec.config == CoreConfig(phys_regs=512, regread_stages=2)
        # An explicit override in the same call still wins.
        custom = ms().replace(kind="flywheel",
                              config=CoreConfig(phys_regs=512,
                                                regread_stages=2,
                                                iw_entries=64))
        assert custom.config.iw_entries == 64

    def test_label_delegates_to_run_spec(self):
        spec = ms(kind="flywheel", clock=ClockPlan(fe_speedup=0.5,
                                                   be_speedup=0.5))
        assert spec.label == spec.run_spec().label


# ----------------------------------------------------------------- Session


class TestSessionRun:
    def test_run_memoizes_and_counts(self):
        with Session() as session:
            a = session.run(ms())
            b = session.run(ms())
            assert a is b
            assert (session.hits, session.executed) == (1, 1)

    def test_store_level_cache_across_sessions(self, tmp_path):
        first = Session(store=ResultStore(tmp_path))
        cold = first.run(ms())
        second = Session(store=ResultStore(tmp_path))
        warm = second.run(ms())
        assert (second.hits, second.executed) == (1, 0)
        assert warm.stats.to_dict() == cold.stats.to_dict()
        assert warm.core is None          # store results come back detached

    def test_store_warmed_by_legacy_runspec_path_hits(self, tmp_path):
        """Records written through the campaign layer (the on-disk format
        since PR 3) must satisfy the Session/MachineSpec path."""
        run = ms().run_spec()
        store = ResultStore(tmp_path)
        store.put(run.cache_key(), run, run.execute())
        session = Session(store=ResultStore(tmp_path))
        assert session.run(ms()) is not None
        assert (session.hits, session.executed) == (1, 0)

    def test_accepts_run_spec_directly(self):
        session = Session()
        result = session.run(ms().run_spec())
        assert result.stats.committed >= N
        assert session.run(ms()) is result   # same key either way

    def test_run_workload_is_uncached_and_live(self):
        session = Session()
        a = session.run_workload("baseline", "smoke", max_instructions=N,
                                 warmup=W)
        b = session.run_workload("baseline", "smoke", max_instructions=N,
                                 warmup=W)
        assert a is not b
        assert a.core is not None
        assert a.to_dict() == b.to_dict()
        with pytest.raises(ConfigError):
            session.run_workload("turbo", "smoke")
        # Failed runs don't count as executed (the counter is the
        # zero-new-work verification primitive).
        before = session.executed
        with pytest.raises(WorkloadError):
            session.run_workload("baseline", "nonesuch")
        assert session.executed == before

    def test_close_drops_memory_cache_only(self, tmp_path):
        session = Session(store=ResultStore(tmp_path))
        session.run(ms())
        session.close()
        again = session.run(ms())
        assert again is not None
        assert session.executed == 1      # second run resolved from store


class TestSessionMap:
    def specs(self):
        return [ms(seed=s) for s in (1, 2)] + \
               [ms(kind="flywheel", seed=s) for s in (1, 2)]

    def test_cold_and_warm_accounting(self, tmp_path):
        specs = self.specs()
        cold = Session(store=ResultStore(tmp_path))
        results = cold.map(specs, jobs=2)
        assert len(results) == len(specs)
        assert (cold.hits, cold.executed) == (0, len(specs))

        warm = Session(store=ResultStore(tmp_path))
        again = warm.map(specs, jobs=2)
        assert (warm.hits, warm.executed) == (len(specs), 0)
        for r1, r2 in zip(results, again):
            assert r1.stats.to_dict() == r2.stats.to_dict()

    def test_input_order_and_duplicates(self):
        session = Session()
        specs = [ms(seed=1), ms(seed=2), ms(seed=1)]
        results = session.map(specs)
        assert results[0] is results[2]
        assert results[0].stats.to_dict() != results[1].stats.to_dict()
        assert session.executed == 2      # deduplicated before running

    def test_map_reuses_memory_cache(self):
        session = Session()
        session.run(ms(seed=1))
        session.map([ms(seed=1), ms(seed=2)])
        assert session.executed == 2      # seed=1 not re-simulated
        assert session.hits == 1          # ...and counted as a hit

    def test_warm_rerun_in_same_session_is_all_hits(self):
        # The README contract: a repeated map reports every spec a hit.
        session = Session()
        specs = [ms(seed=s) for s in (1, 2)]
        session.map(specs)
        session.map(specs)
        assert (session.hits, session.executed) == (len(specs), len(specs))


class TestSessionStream:
    def test_event_ordering_under_parallel_jobs(self):
        session = Session()
        specs = [ms(seed=s) for s in (1, 2, 3)] + [ms(seed=1)]  # dup
        events = list(session.stream(specs, jobs=2))
        assert [e.event for e in events] == \
            ["plan"] + ["result"] * 3 + ["summary"]
        plan, results, summary = events[0], events[1:-1], events[-1]
        assert plan.total == 3            # deduplicated
        assert [e.done for e in results] == [1, 2, 3]
        assert {e.spec.cache_key() for e in results} == \
            {s.cache_key() for s in specs}
        for e in results:
            assert e.source == "run"
            assert e.result.stats.committed >= N
        assert summary.executed == 3 and summary.hits == 0
        assert session.executed == 3

    def test_stream_sources_reflect_cache_levels(self, tmp_path):
        store_specs = [ms(seed=1), ms(seed=2)]
        Session(store=ResultStore(tmp_path)).map(store_specs)

        session = Session(store=ResultStore(tmp_path))
        session.run(ms(seed=1))           # memory-level hit
        events = list(session.stream([ms(seed=1), ms(seed=2), ms(seed=3)]))
        sources = {e.spec.cache_key(): e.source for e in events
                   if e.event == "result"}
        assert sources[ms(seed=1).cache_key()] == "memory"
        assert sources[ms(seed=2).cache_key()] == "store"
        assert sources[ms(seed=3).cache_key()] == "run"
        summary = events[-1]
        assert summary.hits == 2 and summary.executed == 1

    def test_stream_memoizes_results(self):
        session = Session()
        list(session.stream([ms(seed=4)]))
        assert session.run(ms(seed=4)) is not None
        assert session.executed == 1


# ---------------------------------------------------------------- registry


def _stub_runner(workload, config=None, fly=None, clock=None,
                 max_instructions=0, warmup=0, seed=None, mem_scale=1.0):
    from repro.core.sim import execute_kind

    # Delegate to the baseline machinery but stamp the plug-in kind.
    result = execute_kind("baseline", workload, config=config, clock=clock,
                          max_instructions=max_instructions, warmup=warmup,
                          seed=seed, mem_scale=mem_scale)
    result.kind = "stub"
    return result


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert kind_names()[:3] == ("baseline", "pipelined_wakeup",
                                    "flywheel")
        assert get_kind("flywheel").dual_clock
        assert not get_kind("baseline").dual_clock

    def test_unknown_kind_raises_config_error(self):
        with pytest.raises(ConfigError):
            get_kind("turbo")
        with pytest.raises(ConfigError):
            unregister_kind("turbo")

    def test_duplicate_kind_rejected(self):
        from repro.core.baseline import BaselineCore

        with pytest.raises(ConfigError):
            register_kind("baseline", BaselineCore, _stub_runner)
        # replace=True is the explicit override path.
        info = get_kind("baseline")
        register_kind("baseline", info.core, info.runner,
                      default_config=info.default_config, replace=True)
        assert get_kind("baseline").runner is info.runner

    def test_third_party_kind_plugs_into_specs_and_session(self):
        from repro.core.baseline import BaselineCore

        register_kind("stub", BaselineCore, _stub_runner)
        try:
            assert is_registered("stub")
            spec = ms(kind="stub")
            assert spec.config == CoreConfig()      # registry default
            with Session() as session:
                result = session.run(spec)
            assert result.kind == "stub"
            assert result.stats.committed >= N
            # Same machine as the baseline, different content address.
            assert spec.cache_key() != ms().cache_key()
        finally:
            unregister_kind("stub")
        with pytest.raises(CampaignError):
            ms(kind="stub")

    def test_core_cls_resolves_lazily(self):
        from repro.core.flywheel import FlywheelCore

        assert get_kind("flywheel").core_cls is FlywheelCore


# ------------------------------------------------------------ deprecation


class TestDeprecatedWrappers:
    def test_wrappers_warn_exactly_once_per_process(self):
        from repro.core import sim

        saved = set(sim._DEPRECATION_WARNED)
        sim._DEPRECATION_WARNED.clear()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                repro.run_baseline("smoke", max_instructions=N, warmup=W)
                repro.run_baseline("smoke", max_instructions=N, warmup=W)
            deps = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
            assert len(deps) == 1
            assert "Session" in str(deps[0].message)
        finally:
            sim._DEPRECATION_WARNED.clear()
            sim._DEPRECATION_WARNED.update(saved)

    def test_wrappers_share_the_default_session(self):
        assert default_session() is default_session()
        assert default_session().store is None


class TestExperimentContextOnSession:
    def test_conflicting_store_and_session_rejected(self, tmp_path):
        from repro.experiments.common import ExperimentContext

        with pytest.raises(ConfigError):
            ExperimentContext(store=ResultStore(tmp_path),
                              session=Session())

    def test_shared_session_snapshots_executed(self):
        from repro.experiments.common import ExperimentContext

        session = Session()
        first = ExperimentContext(instructions=N, warmup=W, session=session)
        first.baseline("smoke")
        assert first.executed == 1
        # A second context on the same (already-used) session starts
        # from zero, and warmed batches stay excluded.
        second = ExperimentContext(instructions=N, warmup=W,
                                   session=session)
        assert second.executed == 0
        second.warm([ms(seed=5)])
        assert second.executed == 0
        second.baseline("ijpeg")
        assert second.executed == 1

    def test_warm_defaults_to_session_jobs(self):
        from repro.experiments.common import ExperimentContext

        ctx = ExperimentContext(instructions=N, warmup=W,
                                session=Session(jobs=2))
        report = ctx.warm([ms(seed=6), ms(seed=7)])
        assert report.jobs == 2           # inherited, not pinned to 1


# ------------------------------------------------------------ the surface


class TestPublicSurface:
    def test_new_names_exported(self):
        for name in ("MachineSpec", "Session", "SessionEvent",
                     "default_session", "register_kind", "kind_names"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_session_event_is_frozen(self):
        event = SessionEvent(event="plan", total=3)
        with pytest.raises(Exception):
            event.total = 4


# -------------------------------------------- serialization round-trips


class TestResultRoundTrips:
    """PR-6 coverage: every per-run observability payload must survive
    the store (worker serialization is the same code path)."""

    def _round_trip(self, spec, tmp_path):
        cold = Session(store=ResultStore(tmp_path))
        fresh = cold.run(spec)
        warm = Session(store=ResultStore(tmp_path))
        stored = warm.run(spec)
        assert (warm.hits, warm.executed) == (1, 0)
        return fresh, stored

    def test_freq_trace_and_retunes_round_trip(self, tmp_path):
        spec = ms(bench="gcc", instructions=4000, warmup=1000,
                  clock=ClockPlan(governor=GovernorConfig(
                      name="occupancy", interval=200)))
        fresh, stored = self._round_trip(spec, tmp_path)
        assert fresh.stats.freq_trace          # the initial point at least
        assert stored.stats.freq_trace == fresh.stats.freq_trace
        assert stored.stats.dvfs_retunes == fresh.stats.dvfs_retunes

    def test_cache_stats_round_trip(self, tmp_path):
        from repro.mem import MemorySpec

        spec = ms(config=CoreConfig(mem=MemorySpec(mshrs=4)))
        fresh, stored = self._round_trip(spec, tmp_path)
        assert fresh.stats.cache_stats.get("mshr") is not None
        assert stored.stats.cache_stats == fresh.stats.cache_stats

    def test_metrics_snapshot_round_trip(self, tmp_path):
        fresh, stored = self._round_trip(ms(), tmp_path)
        assert fresh.stats.metrics["engine.committed"] >= N
        assert stored.stats.metrics == fresh.stats.metrics

    def test_trace_round_trips_and_artifact_written(self, tmp_path):
        import json

        from repro.obs import TraceSpec

        spec = ms(config=CoreConfig(trace=TraceSpec(buffer=4096)))
        store_dir, trace_dir = tmp_path / "store", tmp_path / "traces"
        cold = Session(store=ResultStore(store_dir),
                       trace_dir=str(trace_dir))
        fresh = cold.run(spec)
        assert fresh.trace is not None and fresh.trace["events"]
        assert fresh.trace_path is not None
        payload = json.loads(
            (trace_dir / f"{spec.cache_key()[:16]}.trace.json").read_text())
        assert payload["traceEvents"]
        # Warm session: trace data comes back from the store and the
        # artifact is re-exported for the new session's trace_dir.
        warm = Session(store=ResultStore(store_dir),
                       trace_dir=str(tmp_path / "traces2"))
        stored = warm.run(spec)
        assert stored.trace["events"] == fresh.trace["events"]
        assert stored.trace_path is not None

    def test_untraced_spec_writes_no_artifact(self, tmp_path):
        session = Session(trace_dir=str(tmp_path / "traces"))
        result = session.run(ms())
        assert result.trace is None and result.trace_path is None
        assert not (tmp_path / "traces").exists()

    def test_session_profile_reports_phases(self):
        from repro.obs.profiler import PHASES

        session = Session()
        report = session.profile(ms())
        assert set(report["profile"]["phases_s"]) == set(PHASES)
        assert session.executed == 1
