"""Tests for the latency/frequency scaling model (Fig. 1 / Table 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.timing.delay import DelayModel, logic_scale, wire_scale, TECH_NODES
from repro.timing.frequency import (
    PAPER_TABLE1,
    TABLE1_NODES,
    module_frequencies_mhz,
)
from repro.timing.structures import (
    cache_latency_ps,
    ec_latency_ps,
    iw_latency_ps,
    rf_latency_ps,
)


class TestScaling:
    def test_logic_scale_linear(self):
        assert logic_scale(0.18) == pytest.approx(1.0)
        assert logic_scale(0.09) == pytest.approx(0.5)

    def test_wire_scale_flat_and_worsening(self):
        assert wire_scale(0.18) == pytest.approx(1.0)
        assert wire_scale(0.06) > wire_scale(0.13) > 1.0

    def test_bad_node(self):
        with pytest.raises(ConfigError):
            logic_scale(5.0)


class TestTable1:
    @pytest.mark.parametrize("module", sorted(PAPER_TABLE1))
    @pytest.mark.parametrize("node", TABLE1_NODES)
    def test_within_six_percent_of_paper(self, module, node):
        ours = module_frequencies_mhz(node)[module]
        paper = PAPER_TABLE1[module][node]
        assert ours == pytest.approx(paper, rel=0.06)

    def test_iw_is_the_slowest_single_cycle_module(self):
        """The premise: the issue window sets the baseline clock."""
        for node in TABLE1_NODES:
            f = module_frequencies_mhz(node)
            assert f["iw_single_cycle"] <= f["rf_single_cycle"]
            assert f["iw_single_cycle"] <= f["icache_two_cycle"]

    def test_frontend_headroom_grows(self):
        """I-cache/IW frequency ratio grows toward 2x at 0.06um."""
        r18 = (module_frequencies_mhz(0.18)["icache_two_cycle"]
               / module_frequencies_mhz(0.18)["iw_single_cycle"])
        r06 = (module_frequencies_mhz(0.06)["icache_two_cycle"]
               / module_frequencies_mhz(0.06)["iw_single_cycle"])
        assert r06 > r18
        assert r06 == pytest.approx(2.0, rel=0.05)


class TestFig1Shape:
    def test_everything_improves_with_shrink(self):
        for fn in (lambda n: iw_latency_ps(n), lambda n: cache_latency_ps(n),
                   lambda n: rf_latency_ps(n), ec_latency_ps):
            lats = [fn(n) for n in TECH_NODES]
            assert lats == sorted(lats, reverse=True)

    def test_cache_iw_crossover(self):
        """Wire-dominated IW scales worse: the cache catches up by 60nm."""
        ratio_25 = cache_latency_ps(0.25) / iw_latency_ps(0.25)
        ratio_06 = cache_latency_ps(0.06) / iw_latency_ps(0.06)
        assert ratio_25 > 1.3
        assert ratio_06 < 1.15

    def test_smaller_structures_faster(self):
        for node in TECH_NODES:
            assert iw_latency_ps(node, 64, 4) < iw_latency_ps(node, 128, 6)
            assert rf_latency_ps(node, 128) < rf_latency_ps(node, 256)

    def test_ports_cost_latency(self):
        assert (cache_latency_ps(0.13, 64, 4, 2)
                > cache_latency_ps(0.13, 64, 2, 1))

    def test_shape_validation(self):
        with pytest.raises(ConfigError):
            iw_latency_ps(0.13, entries=1)
        with pytest.raises(ConfigError):
            rf_latency_ps(0.13, entries=8)
        with pytest.raises(ConfigError):
            cache_latency_ps(0.13, kb=0)


@settings(max_examples=30, deadline=None)
@given(node=st.sampled_from(TECH_NODES),
       entries=st.sampled_from([32, 64, 128, 256]),
       width=st.integers(2, 8))
def test_iw_latency_monotone_in_size(node, entries, width):
    assert (iw_latency_ps(node, entries, width)
            <= iw_latency_ps(node, entries * 2, width))


class TestDelayModel:
    def test_frequency_from_cycles(self):
        m = DelayModel("x", logic_ps=800, wire_ps=200)
        assert m.frequency_mhz(0.18, cycles=2) == pytest.approx(2e6 / 1000.0)

    def test_bad_cycles(self):
        with pytest.raises(ConfigError):
            DelayModel("x", 1, 1).frequency_mhz(0.18, cycles=0)
