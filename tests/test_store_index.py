"""Sharded store layout, migration, the SQLite selector index, and
concurrent-writer / TOCTOU safety."""

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.campaign import ResultStore, RunSpec
from repro.campaign.index import StoreIndex, record_row
from repro.campaign.store import SCHEMA_VERSION

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500


def spec(kind="baseline", bench="smoke", **kw):
    kw.setdefault("instructions", N)
    kw.setdefault("warmup", W)
    return RunSpec(kind=kind, bench=bench, **kw)


def fake_key(i: int) -> str:
    return hashlib.sha256(str(i).encode()).hexdigest()[:40]


def write_fake_record(store: ResultStore, i: int, kind="baseline",
                      bench="smoke", legacy=False) -> str:
    """Plant a schema-valid record file directly (no simulation)."""
    key = fake_key(i)
    record = {"schema": SCHEMA_VERSION, "key": key, "code": "feedface",
              "created": 1_000_000 + i, "engine": "legacy",
              "spec": {"kind": kind, "bench": bench, "instructions": N},
              "result": {"stats": {"committed": i}}, "elapsed_s": 0.01}
    path = store._legacy_path(key) if legacy else store._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record), encoding="utf-8")
    return key


class TestShardedLayout:
    def test_put_uses_two_level_fanout(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        result = s.execute()
        key = s.cache_key()
        store.put(key, s, result)
        expected = (tmp_path / "objects" / key[:2] / key[2:4]
                    / f"{key}.json")
        assert expected.is_file()
        assert key in store
        assert store.get(key) is not None

    def test_legacy_flat_records_still_readable(self, tmp_path):
        store = ResultStore(tmp_path)
        key = write_fake_record(store, 1, legacy=True)
        assert key in store
        assert store._read(key)["key"] == key
        assert len(store) == 1

    def test_migrate_relocates_legacy_records(self, tmp_path):
        store = ResultStore(tmp_path)
        legacy = [write_fake_record(store, i, legacy=True)
                  for i in range(5)]
        sharded = write_fake_record(store, 99)
        assert store.migrate() == 5
        for key in legacy:
            assert store._path(key).is_file()
            assert not store._legacy_path(key).exists()
        assert store._path(sharded).is_file()
        assert len(store) == 6
        # Idempotent: nothing left to move.
        assert store.migrate() == 0
        # Index was force-rebuilt over the new layout.
        assert len(store.query()) == 6

    def test_len_counts_both_layouts(self, tmp_path):
        store = ResultStore(tmp_path)
        write_fake_record(store, 1, legacy=True)
        write_fake_record(store, 2)
        assert len(store) == 2


class TestIndex:
    def test_query_filters_and_orders(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(6):
            write_fake_record(store, i,
                              kind="baseline" if i % 2 else "flywheel",
                              bench="smoke" if i < 4 else "gcc")
        rows = store.query(kind="baseline")
        assert {r["kind"] for r in rows} == {"baseline"}
        assert len(rows) == 3
        # Newest (largest mtime) first; limit honoured.
        assert store.query(limit=2) == store.query()[:2]
        assert len(store.query(bench="gcc")) == 2
        assert store.query(kind="nope") == []

    def test_query_matches_full_scan_fallback(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(8):
            write_fake_record(store, i,
                              kind="baseline" if i % 2 else "flywheel")
        indexed = store.query(kind="baseline")
        store.index.disabled = True
        scanned = store.query(kind="baseline")
        assert ({r["key"] for r in indexed}
                == {r["key"] for r in scanned})

    def test_index_survives_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = {write_fake_record(store, i) for i in range(4)}
        store.refresh_index(force=True)
        store.index.path.write_bytes(b"this is not a sqlite file")
        fresh = ResultStore(tmp_path)   # new connection sees the garbage
        assert {r["key"] for r in fresh.query()} == keys

    def test_incremental_refresh_sees_out_of_band_writes(self, tmp_path):
        store = ResultStore(tmp_path)
        write_fake_record(store, 1)
        store.refresh_index(force=True)
        # A second writer (no note_put through *this* index object).
        other = ResultStore(tmp_path)
        write_fake_record(other, 2, kind="flywheel")
        assert len(store.query()) == 2
        assert len(store.query(kind="flywheel")) == 1

    def test_note_put_keeps_index_current_without_rescan(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        store.put(s.cache_key(), s, s.execute(), elapsed_s=1.5)
        row = store.query(kind="baseline")[0]
        assert row["key"] == s.cache_key()
        assert row["elapsed_s"] == 1.5
        assert row["engine"] == "legacy"

    def test_record_row_damage_tolerant(self):
        assert record_row({"key": "abc"})["kind"] == ""
        row = record_row({"key": "abc", "spec": {"kind": "k", "clock":
                          {"governor": {"name": "occupancy"}}}})
        assert row["gov"] == "occupancy"


class TestIndexedReadAvoidance:
    """The acceptance check: filtered queries over a big store must not
    read every shard."""

    @pytest.fixture(scope="class")
    def big_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("big-store")
        store = ResultStore(root)
        for i in range(5000):
            write_fake_record(store, i,
                              kind="flywheel" if i % 100 == 0
                              else "baseline")
        assert store.refresh_index(force=True)
        return root

    def _counting(self, root, monkeypatch):
        store = ResultStore(root)
        reads = []
        original = ResultStore._read_path

        def counted(self, path):
            reads.append(path)
            return original(self, path)

        monkeypatch.setattr(ResultStore, "_read_path", counted)
        return store, reads

    def test_query_reads_no_records(self, big_store, monkeypatch):
        store, reads = self._counting(big_store, monkeypatch)
        rows = store.query(kind="flywheel")
        assert len(rows) == 50
        assert reads == []

    def test_filtered_records_reads_only_matches(self, big_store,
                                                 monkeypatch):
        store, reads = self._counting(big_store, monkeypatch)
        out = list(store.records(kind="flywheel"))
        assert len(out) == 50
        assert len(reads) == 50        # not 5000: the index picked them

    def test_limited_listing_reads_only_the_page(self, big_store,
                                                 monkeypatch):
        store, reads = self._counting(big_store, monkeypatch)
        out = list(store.records(limit=10))
        assert len(out) == 10
        assert len(reads) == 10


class TestRecordsStreaming:
    def test_records_is_lazy(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        for i in range(20):
            write_fake_record(store, i)
        store.refresh_index(force=True)
        reads = []
        original = ResultStore._read_path

        def counted(self, path):
            reads.append(path)
            return original(self, path)

        monkeypatch.setattr(ResultStore, "_read_path", counted)
        iterator = store.records()
        next(iterator)
        assert len(reads) == 1         # nothing pre-materialized

    def test_records_tolerates_deletion_mid_iteration(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [write_fake_record(store, i) for i in range(10)]
        store.refresh_index(force=True)
        iterator = store.records()
        first = next(iterator)
        # A concurrent `clean` takes everything else out from under us.
        for key in keys:
            if key != first["key"]:
                os.unlink(store._path(key))
        rest = list(iterator)          # no exception, just fewer records
        assert rest == []
        # The vanished rows were dropped from the index as a side effect.
        assert {r["key"] for r in store.index.query({})} == {first["key"]}

    def test_scan_fallback_filters_without_index(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(6):
            write_fake_record(store, i,
                              kind="baseline" if i % 2 else "flywheel")
        store.index.disabled = True
        out = list(store.records(kind="flywheel"))
        assert len(out) == 3
        assert all(r["spec"]["kind"] == "flywheel" for r in out)


def _writer_child(root, payload, result_payload, start, count, shared_key):
    """Child process: hammer the store with puts, incl. a contended key."""
    from repro.core.sim import SimResult

    store = ResultStore(root)
    s = RunSpec.from_dict(payload)
    result = SimResult.from_dict(result_payload)
    for i in range(start, start + count):
        store.put(fake_key(i) if i % 7 else shared_key, s, result,
                  elapsed_s=float(i))


class TestConcurrentWriters:
    def test_two_processes_no_torn_records(self, tmp_path):
        s = spec()
        result = s.execute()
        shared = fake_key(10_000)
        ctx = multiprocessing.get_context()
        children = [
            ctx.Process(target=_writer_child,
                        args=(str(tmp_path), s.to_dict(), result.to_dict(),
                              start, 50, shared))
            for start in (0, 50)]
        for child in children:
            child.start()
        for child in children:
            child.join(60)
            assert child.exitcode == 0
        store = ResultStore(tmp_path)
        # Every record on disk parses — no torn JSON anywhere.
        paths = store._record_paths()
        records = [store._read_path(p) for p in paths]
        assert all(r is not None for r in records)
        # Multiples of 7 all target the shared key (last writer wins,
        # exactly one file); everything else keeps its own key.
        own = sum(1 for i in range(100) if i % 7)
        assert len(store) == own + 1
        # The index agrees with the filesystem (row-level last-writer-
        # wins for the contended key: one row, not one per attempt).
        store.refresh_index(force=True)
        assert {r["key"] for r in store.query()} == {p.stem for p in paths}
        assert sum(1 for r in store.query() if r["key"] == shared) == 1
