"""Unit + property tests for both renaming schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, SimulationError
from repro.isa import DynInstr, OpClass
from repro.isa.registers import NUM_ARCH_REGS
from repro.rename.pools import PoolFile
from repro.rename.r10k import R10KRenamer
from repro.rename.redistribution import RedistributionController
from repro.rename.two_phase import TwoPhaseRenamer


def _instr(seq, dest=None, srcs=()):
    return DynInstr(seq=seq, pc=seq * 4, op=OpClass.INT_ALU, dest=dest,
                    srcs=tuple(srcs), sid=seq)


class TestR10K:
    def test_too_small(self):
        with pytest.raises(ConfigError):
            R10KRenamer(32)

    def test_rename_allocates_fresh_tag(self):
        r = R10KRenamer(192)
        a = _instr(0, dest=5)
        r.rename(a)
        b = _instr(1, dest=5, srcs=[5])
        r.rename(b)
        assert b.src_tags == (a.dest_tag,)
        assert b.dest_tag != a.dest_tag

    def test_zero_reg_not_renamed(self):
        r = R10KRenamer(192)
        a = _instr(0, dest=0)
        r.rename(a)
        assert a.dest_tag == -1

    def test_free_list_recycles(self):
        r = R10KRenamer(192)
        start = r.free_count
        instrs = []
        for i in range(10):
            d = _instr(i, dest=4)
            r.rename(d)
            instrs.append(d)
        assert r.free_count == start - 10
        for d in instrs:
            r.commit(d)
        # Every commit freed one previous mapping (including the identity
        # tag of the first write), so the pool is back to its start size
        # with the one live mapping occupying a former rename register.
        assert r.free_count == start

    def test_exhaustion(self):
        r = R10KRenamer(70)   # only 6 rename regs
        for i in range(6):
            assert r.can_rename(True)
            r.rename(_instr(i, dest=1))
        assert not r.can_rename(True)
        assert r.can_rename(False)


@settings(max_examples=30, deadline=None)
@given(dests=st.lists(st.integers(1, 63), min_size=1, max_size=100))
def test_r10k_no_tag_aliasing(dests):
    """All live (un-committed) destination tags are distinct."""
    r = R10KRenamer(256)
    live = []
    for i, d in enumerate(dests):
        if not r.can_rename(True):
            break
        dyn = _instr(i, dest=d)
        r.rename(dyn)
        live.append(dyn.dest_tag)
    assert len(set(live)) == len(live)


class TestPoolFile:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            PoolFile(500, 8)   # 500 not divisible by 64

    def test_capacity_rule(self):
        pools = PoolFile(512, 8)
        for _ in range(7):
            assert pools.can_allocate(5)
            pools.allocate(5)
        assert not pools.can_allocate(5)
        pools.retire(5)
        assert pools.can_allocate(5)

    def test_underflow_guard(self):
        pools = PoolFile(512, 8)
        with pytest.raises(SimulationError):
            pools.retire(3)

    def test_phys_mapping_within_pool(self):
        pools = PoolFile(512, 8)
        for arch in range(NUM_ARCH_REGS):
            for slot in range(20):
                p = pools.phys(arch, slot)
                assert pools.bases[arch] <= p < pools.bases[arch] + pools.sizes[arch]

    def test_apply_sizes_requires_drained(self):
        pools = PoolFile(512, 8)
        pools.allocate(1)
        with pytest.raises(SimulationError):
            pools.apply_sizes([8] * NUM_ARCH_REGS)

    def test_apply_sizes_budget(self):
        pools = PoolFile(512, 8)
        with pytest.raises(ConfigError):
            pools.apply_sizes([9] * NUM_ARCH_REGS)


@settings(max_examples=20, deadline=None)
@given(grow=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                     min_size=0, max_size=40))
def test_pool_phys_disjoint_across_registers(grow):
    """Pools never overlap in the physical file, whatever the geometry."""
    pools = PoolFile(512, 8, min_pool_size=2, max_pool_size=32)
    sizes = list(pools.sizes)
    for winner, loser in grow:   # move one entry at a time, budget-neutral
        if winner != loser and sizes[winner] < 32 and sizes[loser] > 2:
            sizes[winner] += 1
            sizes[loser] -= 1
    pools.apply_sizes(sizes)
    seen = set()
    for arch in range(NUM_ARCH_REGS):
        for slot in range(pools.sizes[arch]):
            p = pools.phys(arch, slot)
            assert p not in seen
            seen.add(p)
    assert len(seen) == 512


class TestTwoPhase:
    def test_lid_sequence(self):
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        a = _instr(0, dest=5)
        rn.rename(a)
        b = _instr(1, dest=5, srcs=[5])
        rn.rename(b)
        assert a.dest_lid == 1
        assert b.src_lids == (1,)    # reads the latest write
        assert b.dest_lid == 2

    def test_reset_lids(self):
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        rn.rename(_instr(0, dest=5))
        rn.reset_lids()
        c = _instr(1, srcs=[5])
        rn.rename(c)
        assert c.src_lids == (0,)   # now refers to the committed value

    def test_update_maps_into_pool(self):
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        a = _instr(0, dest=5)
        rn.rename(a)
        rn.update(a, trace_id=0)
        assert pools.bases[5] <= a.dest_tag < pools.bases[5] + pools.sizes[5]

    def test_producer_consumer_same_phys(self):
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        a = _instr(0, dest=7)
        rn.rename(a)
        b = _instr(1, srcs=[7])
        rn.rename(b)
        rn.update(a, 0)
        rn.update(b, 0)
        assert b.src_tags == (a.dest_tag,)

    def test_frt_checkpoint_rebases_lid0(self):
        """After retirement + checkpoint, LID 0 maps to the last value."""
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        a = _instr(0, dest=5)
        rn.rename(a)
        rn.update(a, 0)
        rn.retire(a)
        rn.checkpoint_from_frt()
        c = _instr(1, srcs=[5])
        rn.rename(c)
        rn.update(c, 1)
        assert c.src_tags == (a.dest_tag,)

    def test_srt_checkpoint_rebases_before_retire(self):
        """The SRT swap points LID 0 at the newest *updated* mapping."""
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        a = _instr(0, dest=5)
        rn.rename(a)
        rn.update(a, trace_id=0)
        rn.checkpoint_from_srt()      # a has not retired yet
        rn.reset_lids()
        c = _instr(1, srcs=[5])
        rn.rename(c)
        rn.update(c, 1)
        assert c.src_tags == (a.dest_tag,)

    def test_srt_trace_guard(self):
        """An older trace's instruction cannot clobber a newer SRT entry."""
        pools = PoolFile(512, 8)
        rn = TwoPhaseRenamer(pools)
        new = _instr(0, dest=5)
        rn.rename(new)
        rn.update(new, trace_id=5)
        old = _instr(1, dest=5)
        old.dest_lid = 1
        old.src_lids = ()
        rn.update(old, trace_id=3)    # older trace
        rn.checkpoint_from_srt()
        probe = _instr(2, srcs=[5])
        rn.rename(probe)
        rn.update(probe, 6)
        assert probe.src_tags == (new.dest_tag,)


@settings(max_examples=20, deadline=None)
@given(writes=st.lists(st.integers(1, 63), min_size=1, max_size=60))
def test_two_phase_inflight_tags_distinct(writes):
    """Distinct in-flight writes never share a physical register."""
    pools = PoolFile(512, 8)
    rn = TwoPhaseRenamer(pools)
    live = []
    for i, arch in enumerate(writes):
        dyn = _instr(i, dest=arch)
        if not rn.can_rename_dest(dyn):
            continue
        rn.rename(dyn)
        rn.update(dyn, 0)
        live.append(dyn.dest_tag)
    assert len(set(live)) == len(live)


class TestRedistribution:
    def test_no_stalls_no_change(self):
        pools = PoolFile(512, 8)
        ctl = RedistributionController(pools, interval=100, penalty=10)
        assert ctl.check(100) is None

    def test_bottleneck_grows(self):
        pools = PoolFile(512, 8)
        ctl = RedistributionController(pools, interval=100, penalty=10)
        for _ in range(100):
            pools.note_stall(5)
        sizes = ctl.check(100)
        assert sizes is not None
        assert sizes[5] > 8
        assert sum(sizes) == 512

    def test_counters_reset_after_check(self):
        pools = PoolFile(512, 8)
        ctl = RedistributionController(pools, interval=100, penalty=10)
        for _ in range(100):
            pools.note_stall(5)
        ctl.check(100)
        assert pools.stall_counts[5] == 0

    def test_backoff(self):
        pools = PoolFile(512, 8)
        ctl = RedistributionController(pools, interval=100, penalty=10)
        for _ in range(100):
            pools.note_stall(5)
        assert ctl.check(100) is not None
        assert ctl.interval == 200

    def test_sizes_within_bounds(self):
        pools = PoolFile(512, 8, min_pool_size=2, max_pool_size=32)
        ctl = RedistributionController(pools, interval=100, penalty=10)
        for arch in (1, 2, 3):
            for _ in range(500):
                pools.note_stall(arch)
        sizes = ctl.check(100)
        assert sizes is not None
        for s in sizes:
            assert 2 <= s <= 32
