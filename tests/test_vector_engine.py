"""Edge pins for the vector engine tier and the cross-run stream pool.

The golden suite (tests/test_golden_stats.py) already holds the vector
tier to bit-identical SimStats/cache/metric parity on every pinned
kind x bench, under four governors and a bounded-MSHR memory spec.
This module pins the *edges* the event-horizon scheduler could get
wrong while leaving aggregate counters intact:

* a DVFS interval check must fire on exactly the same cycle (the
  horizon's threshold-aware fallback rejoins the event-bounded tick
  set as a jump nears ``dvfs.next_check``);
* a flight-recorder window opening inside a would-be jumped span must
  capture a byte-identical ring (vector runs the conservative per-tick
  wake/done path whenever the recorder is armed);
* a watchdog trip must fail at the same cycle with the same structured
  snapshot (the lazily-settled wake/done columns are materialized at
  the trip point);
* the NumPy gate rejects ``engine="vector"`` with the same actionable
  hint as ``"turbo"``.

The second half covers the cross-run :class:`StreamPool` cache —
content keying on (program, seed, bpred), FIFO bounds, reuse across a
``Session.map`` fan-out, and growth when a cached pool is shorter than
a later run needs.
"""

import pytest

from repro.core.config import ClockPlan, CoreConfig
from repro.core.engine.turbo import HAVE_NUMPY
from repro.core.sim import execute_kind
from repro.dvfs import GovernorConfig
from repro.errors import ConfigError, DeadlockError
from repro.obs.spec import TraceSpec
from repro.session import MachineSpec, Session
from repro.workloads import generate_program, get_profile

turbo_required = pytest.mark.skipif(
    not HAVE_NUMPY, reason="turbo extra (NumPy) not installed")


def _pair(kind, bench, n=8000, w=3000, clock=None, **cfg_kw):
    out = []
    for engine in ("legacy", "vector"):
        config = CoreConfig(engine=engine, **cfg_kw)
        out.append(execute_kind(kind, bench, config=config, clock=clock,
                                max_instructions=n, warmup=w))
    return out


@turbo_required
class TestVectorSkipAheadEdges:
    @pytest.mark.parametrize("gov", ("occupancy", "ipc_ladder"))
    def test_jump_never_crosses_a_dvfs_interval(self, gov):
        # interval=200 is far shorter than the spans the horizon would
        # otherwise elide, so a jump that ignored ``dvfs.next_check``
        # would skip check cycles and shift the frequency trace.
        clock = ClockPlan(governor=GovernorConfig(name=gov, interval=200))
        legacy, vector = _pair("baseline", "gcc", clock=clock)
        assert legacy.stats.freq_trace == vector.stats.freq_trace
        assert legacy.stats.dvfs_retunes == vector.stats.dvfs_retunes
        assert legacy.stats.to_dict() == vector.stats.to_dict()

    @pytest.mark.parametrize("start", (2500, 5001, 9000))
    def test_trace_window_opening_mid_jump(self, start):
        # Recorder windows are [start, stop) in back-end cycles. With
        # the recorder armed the vector loop must keep every stall and
        # completion emission on its original cycle — the serialized
        # ring must be byte-identical, including drop counts.
        spec = TraceSpec(buffer=1 << 16, start=start, stop=start + 1500)
        legacy, vector = _pair("baseline", "gcc", trace=spec)
        assert legacy.trace == vector.trace
        assert legacy.stats.to_dict() == vector.stats.to_dict()

    @pytest.mark.parametrize("window", (10, 24))
    def test_watchdog_trips_on_the_same_cycle(self, window):
        # pointer_chase stalls the back end long enough to elapse tiny
        # windows mid-run. The trip snapshot reads per-entry done flags,
        # so the lazily-written done column must be materialized to the
        # exact per-cycle truth at the trip point.
        trips = []
        for engine in ("legacy", "vector"):
            config = CoreConfig(engine=engine, deadlock_window=window)
            with pytest.raises(DeadlockError) as err:
                execute_kind("baseline", "pointer_chase", config=config,
                             max_instructions=8000, warmup=3000)
            trips.append((str(err.value), err.value.snapshot))
        assert trips[0] == trips[1]


class TestVectorNumpyGate:
    def test_missing_numpy_is_a_config_error(self, monkeypatch):
        # engine="vector" rides the same extra as "turbo": without
        # NumPy the spec must fail at construction with the same
        # actionable install hint, never deep inside a run.
        import repro.core.engine.turbo as turbo_pkg

        monkeypatch.setattr(turbo_pkg, "HAVE_NUMPY", False)
        with pytest.raises(ConfigError, match=r"repro\[turbo\]"):
            CoreConfig(engine="vector")


# --------------------------------------------------------------------------
# Cross-run stream pool cache (satellite: the pool is the shared state
# behind best-of-N bench repeats and Session.map fan-outs, so its keying
# and growth rules are load-bearing for correctness, not just speed).

if HAVE_NUMPY:
    from repro.core.engine.turbo.pool import _POOL_CACHE, StreamPool, get_pool
    from repro.frontend.bpred import BPredConfig


@turbo_required
class TestStreamPoolCache:
    def setup_method(self):
        _POOL_CACHE.clear()

    def test_keyed_on_program_content_seed_and_bpred(self):
        prog = generate_program(get_profile("smoke"))
        pool = get_pool(prog, 0, BPredConfig())
        assert get_pool(prog, 0, BPredConfig()) is pool
        # An *equal* program regenerated from the same profile hits the
        # same entry: keying is content identity, not object identity.
        again = generate_program(get_profile("smoke"))
        assert again is not prog
        assert get_pool(again, 0, BPredConfig()) is pool
        # Any key axis changing means a different pool: the predictor
        # config drives the precomputed taken/target columns, the seed
        # drives value generation.
        assert get_pool(prog, 1, BPredConfig()) is not pool
        other_bp = BPredConfig(history_bits=4)
        assert get_pool(prog, 0, other_bp) is not pool
        assert len(_POOL_CACHE) == 3

    def test_cache_is_a_bounded_fifo(self):
        prog = generate_program(get_profile("smoke"))
        pools = [get_pool(prog, seed, BPredConfig()) for seed in range(6)]
        assert len(_POOL_CACHE) == 4
        # Oldest entries evicted: seed 0 misses (new object), seed 5
        # still hits.
        assert get_pool(prog, 5, BPredConfig()) is pools[5]
        assert get_pool(prog, 0, BPredConfig()) is not pools[0]

    def test_session_map_fanout_shares_one_pool(self):
        # Three vector specs over the same bench/seed differ only in
        # budget — distinct cache keys, one underlying pool. jobs=1
        # keeps the campaign in-process so the cache is observable.
        specs = [MachineSpec("baseline", "smoke", engine="vector",
                             instructions=n, warmup=1000)
                 for n in (2000, 3000, 4000)]
        Session().map(specs, jobs=1)
        assert len(_POOL_CACHE) == 1

    def test_cached_pool_shorter_than_requested_grows(self):
        # A short run primes the cache with a short pool; a later,
        # longer run over the same key must grow it in place (ensure()
        # appends columns) and still land on legacy-identical stats.
        session = Session()

        def stats(engine, n):
            config = CoreConfig(engine=engine)
            return session.run_workload(
                "baseline", "smoke", config=config,
                max_instructions=n, warmup=1000).stats.to_dict()

        short = stats("vector", 2000)
        pool = next(iter(_POOL_CACHE.values()))
        rows_after_short = pool.n
        long = stats("vector", 6000)
        assert next(iter(_POOL_CACHE.values())) is pool
        assert pool.n > rows_after_short
        # Both budgets, served from the same (grown) pool, match the
        # pool-less legacy engine exactly.
        assert short == stats("legacy", 2000)
        assert long == stats("legacy", 6000)

    def test_explicit_ensure_is_idempotent_growth(self):
        prog = generate_program(get_profile("smoke"))
        pool = StreamPool(prog, 0, BPredConfig())
        pool.ensure(100)
        n100 = pool.n
        assert n100 >= 100
        head = (list(pool.pc[:50]), list(pool.dest[:50]))
        pool.ensure(50)                     # shorter request: no-op
        assert pool.n == n100
        pool.ensure(n100 + 500)             # growth keeps the prefix
        assert pool.n >= n100 + 500
        assert list(pool.pc[:50]) == head[0]
        assert list(pool.dest[:50]) == head[1]
