"""Tests for the ablation harness and its configuration knobs."""

import pytest

from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.flywheel import FlywheelCore
from repro.experiments import ablations
from repro.experiments.common import ExperimentContext
from repro.workloads import InstructionStream, generate_program, get_profile


class TestAblationConfigs:
    def test_all_configs_distinct(self):
        labels = [label for label, _cfg in ablations.ABLATIONS]
        assert len(labels) == len(set(labels))
        assert "full" in labels

    @pytest.mark.parametrize("label,cfg", ablations.ABLATIONS)
    def test_each_config_runs(self, label, cfg):
        prog = generate_program(get_profile("smoke"))
        core = FlywheelCore(CoreConfig(phys_regs=512, regread_stages=2),
                            cfg, ClockPlan(), InstructionStream(prog))
        stats = core.run(2500, warmup=500)
        assert stats.committed >= 2500, label

    def test_delay_network_wired_through(self):
        prog = generate_program(get_profile("smoke"))
        core = FlywheelCore(CoreConfig(phys_regs=512, regread_stages=2),
                            FlywheelConfig(delay_network=True),
                            ClockPlan(), InstructionStream(prog))
        assert core.iw.delay_network


class TestAblationRun:
    def test_rows_shape(self):
        ctx = ExperimentContext(instructions=3000, warmup=5000,
                                benchmarks=("smoke",))
        rows = ablations.run(ctx)
        assert rows[-1]["benchmark"] == "geomean"
        for label, _cfg in ablations.ABLATIONS:
            assert label in rows[0]
            assert rows[0][label] > 0
