"""Tests for the chart/report helpers."""

import pytest

from repro.analysis import bar_chart, markdown_table, series_table
from repro.errors import ConfigError


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart({"gcc": 1.0, "mesa": 2.0}, width=20)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 20     # max value fills the width
        assert lines[0].count("#") == 10

    def test_baseline_marker(self):
        out = bar_chart({"a": 2.0}, width=20, baseline=1.0)
        assert "|" in out

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="Fig X")
        assert out.splitlines()[0] == "Fig X"

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart({})

    def test_narrow_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart({"a": 1.0}, width=2)

    def test_zero_values_ok(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.000" in out


class TestSeriesTable:
    def test_renders_all_rows(self):
        rows = [{"bench": "gcc", "x": 1.5}, {"bench": "vpr", "x": 0.25}]
        out = series_table(rows, "bench", ["x"])
        assert "gcc" in out and "vpr" in out
        assert "1.500" in out and "0.250" in out


class TestMarkdownTable:
    def test_shape(self):
        rows = [{"a": 1.0, "b": "x"}]
        out = markdown_table(rows, ["a", "b"])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1.000 | x |"
