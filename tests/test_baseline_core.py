"""Integration tests for the baseline out-of-order core."""

import pytest

from repro.core.baseline import BaselineCore
from repro.core.config import CoreConfig
from repro.workloads import InstructionStream, generate_program, get_profile


def _run(name="smoke", config=None, n=5000, warmup=2000, seed=None):
    prog = generate_program(get_profile(name), seed=seed)
    core = BaselineCore(config or CoreConfig(), InstructionStream(prog))
    stats = core.run(n, warmup=warmup)
    return core, stats


class TestBaselineProgress:
    def test_commits_requested_instructions(self):
        _core, stats = _run(n=3000)
        assert stats.committed >= 3000

    def test_ipc_in_sane_range(self):
        _core, stats = _run(n=5000)
        assert 0.1 < stats.ipc <= 4.0   # 4-wide commit bound

    def test_deterministic(self):
        _core1, s1 = _run(n=3000)
        _core2, s2 = _run(n=3000)
        assert s1.total_be_cycles == s2.total_be_cycles
        assert s1.mispredicts == s2.mispredicts

    def test_commit_bound_by_width(self):
        _core, stats = _run(n=4000)
        assert stats.committed <= stats.total_be_cycles * 4 + 4

    def test_issue_bound_by_width(self):
        _core, stats = _run(n=4000)
        assert stats.issued <= stats.total_be_cycles * 6

    def test_branch_stats_populated(self):
        _core, stats = _run(n=5000)
        assert stats.branches > 0
        assert 0.0 <= stats.mispredict_rate < 0.5


class TestBaselineStructures:
    def test_machine_drains_cleanly(self):
        core, _stats = _run(n=3000)
        # The run stops mid-flight, but bounded structures never leak:
        assert len(core.rob) <= core.config.rob_entries
        assert len(core.iw) <= core.config.iw_entries
        assert len(core.lsq) <= core.config.lsq_entries

    def test_power_events_counted(self):
        _core, stats = _run(n=3000)
        for event in ("icache_access", "decode_op", "rename_op", "iw_write",
                      "iw_select", "rob_write", "fu_op"):
            assert stats.events[event] > 0, event

    def test_caches_see_traffic(self):
        core, _stats = _run(n=5000)
        assert core.hierarchy.l1i.stats.accesses > 0
        assert core.hierarchy.l1d.stats.accesses > 0


class TestFig2Variants:
    """The pipeline-loop experiments must order as the paper says."""

    def test_extra_frontend_stage_costs_little(self):
        _b, base = _run("gcc", n=8000)
        _f, fe = _run("gcc", config=CoreConfig(extra_frontend_stages=1),
                      n=8000)
        loss = 1.0 - fe.ipc / base.ipc
        assert loss < 0.12

    def test_pipelined_wakeup_costs_much_more(self):
        _b, base = _run("gcc", n=8000)
        _f, fe = _run("gcc", config=CoreConfig(extra_frontend_stages=1),
                      n=8000)
        _w, ws = _run("gcc", config=CoreConfig(wakeup_extra_delay=1),
                      n=8000)
        fe_loss = 1.0 - fe.ipc / base.ipc
        ws_loss = 1.0 - ws.ipc / base.ipc
        assert ws_loss > fe_loss
        assert ws_loss > 0.02

    def test_memory_scale_slows_execution(self):
        prog = generate_program(get_profile("gcc"))
        c1 = BaselineCore(CoreConfig(), InstructionStream(prog))
        s1 = c1.run(8000, warmup=2000)
        prog2 = generate_program(get_profile("gcc"))
        c2 = BaselineCore(CoreConfig(), InstructionStream(prog2),
                          mem_scale=2.0)
        s2 = c2.run(8000, warmup=2000)
        assert s2.total_be_cycles >= s1.total_be_cycles


class TestAcrossBenchmarks:
    @pytest.mark.parametrize("bench", ["ijpeg", "gcc", "vpr", "mesa"])
    def test_runs_to_completion(self, bench):
        _core, stats = _run(bench, n=3000, warmup=1000)
        assert stats.committed >= 3000
