"""Integration tests for the composable memory subsystem (PR 5):
MemorySpec threading through configs/specs/sessions, normalization and
payload stability, per-level stats surfacing, the governor's miss-rate
input, the mem_sweep experiment and the CLI export columns."""

import csv
import json

import pytest

from repro.campaign.spec import RunSpec, Sweep
from repro.campaign.store import ResultStore
from repro.core.config import CoreConfig
from repro.errors import ConfigError
from repro.mem import CacheLevelSpec, MemoryConfig, MemorySpec
from repro.session import MachineSpec, Session

#: Tiny budgets: every simulated spec in this file finishes in ~100ms.
N, W = 1200, 2500


def ms(kind="baseline", bench="smoke", **kw):
    kw.setdefault("instructions", N)
    kw.setdefault("warmup", W)
    return MachineSpec(kind=kind, bench=bench, **kw)


# ------------------------------------------------------------- MemorySpec


class TestMemorySpec:
    def test_default_is_legacy_equivalent(self):
        assert MemorySpec() == MemorySpec.from_config(MemoryConfig())
        assert MemorySpec().is_simple

    def test_non_simple_shapes(self):
        assert not MemorySpec(mshrs=4).is_simple
        assert not MemorySpec(prefetch="stride").is_simple
        assert not MemorySpec(write_policy="back").is_simple
        assert not MemorySpec(
            levels=(CacheLevelSpec(64, 4, 2),)).is_simple

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemorySpec(levels=())
        with pytest.raises(ConfigError):
            MemorySpec(prefetch="psychic")
        with pytest.raises(ConfigError):
            MemorySpec(write_policy="through-the-floor")
        with pytest.raises(ConfigError):
            MemorySpec(mshrs=-1)
        with pytest.raises(ConfigError):
            MemorySpec(line_bytes=48)
        with pytest.raises(ConfigError):
            CacheLevelSpec(0, 4, 2)

    def test_round_trip_through_json(self):
        spec = MemorySpec(mshrs=8, prefetch="stride", write_policy="back",
                          levels=(CacheLevelSpec(32, 2, 2),
                                  CacheLevelSpec(256, 8, 12),
                                  CacheLevelSpec(2048, 8, 30)))
        again = MemorySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert hash(again) == hash(spec)

    def test_labels_are_compact(self):
        assert MemorySpec().label == "ideal"
        assert MemorySpec(mshrs=4).label == "mshr4"
        assert MemorySpec(mshrs=8, prefetch="next_line").label == "mshr8+nl"
        assert MemorySpec(prefetch="stride",
                          write_policy="back").label == "ideal+st+wb"

    def test_labels_distinguish_every_axis(self):
        # Specs differing in any single axis must not collapse to the
        # same ls/CSV label.
        variants = [
            MemorySpec(),
            MemorySpec(dram_latency=150),
            MemorySpec(dram_latency=200),
            MemorySpec(line_bytes=64),
            MemorySpec(l1i=CacheLevelSpec(32, 2, 2)),
            MemorySpec(l1i=CacheLevelSpec(64, 2, 4)),
            MemorySpec(levels=(CacheLevelSpec(64, 4, 2),
                               CacheLevelSpec(256, 4, 10))),
            MemorySpec(levels=(CacheLevelSpec(64, 8, 2),
                               CacheLevelSpec(512, 4, 10))),
            MemorySpec(levels=(CacheLevelSpec(64, 4, 3),
                               CacheLevelSpec(512, 4, 10))),
        ]
        labels = [v.label for v in variants]
        assert len(set(labels)) == len(labels)


# --------------------------------------------------- config/spec threading


class TestSpecThreading:
    def test_redundant_spec_normalizes_to_none(self):
        # Spelling out the derived default describes the same machine;
        # the registry's normalize_config folds it away for every kind.
        from repro.core.registry import get_kind

        for kind in ("baseline", "pipelined_wakeup", "flywheel"):
            explicit = ms(kind=kind,
                          config=get_kind(kind).default_config()
                          .with_variant(mem=MemorySpec()))
            assert explicit.config.mem is None
            assert explicit == ms(kind=kind)
            assert explicit.cache_key() == ms(kind=kind).cache_key()

    def test_default_payload_has_no_mem_key(self):
        # The pre-MemorySpec payload shape (and the PR 4 pinned hashes)
        # survive: a default config serializes without a "mem" key.
        payload = ms().run_spec().payload()
        assert "mem" not in payload["config"]

    def test_non_default_spec_changes_key_and_round_trips(self):
        spec = ms(config=CoreConfig(mem=MemorySpec(mshrs=4)))
        assert spec.cache_key() != ms().cache_key()
        payload = spec.run_spec().payload()
        assert payload["config"]["mem"]["mshrs"] == 4
        again = RunSpec.from_dict(json.loads(json.dumps(payload)))
        assert again == spec.run_spec()
        assert again.cache_key() == spec.cache_key()

    def test_label_and_variant(self):
        run = ms(config=CoreConfig(mem=MemorySpec(
            mshrs=4, prefetch="next_line"))).run_spec()
        assert "mem=mshr4+nl" in run.label
        assert "mem" not in run.variant()   # rendered via label, not k=v

    def test_sweep_mems_axis(self):
        sweep = Sweep(kinds=("baseline",), benchmarks=("smoke",),
                      mems=(None, MemorySpec(mshrs=1), MemorySpec(mshrs=4)),
                      instructions=N, warmup=W)
        specs = sweep.expand()
        assert len(specs) == 3
        assert {s.config.mem for s in specs} == {
            None, MemorySpec(mshrs=1), MemorySpec(mshrs=4)}

    def test_mem_axis_composes_with_config_axis(self):
        sweep = Sweep(kinds=("baseline",), benchmarks=("smoke",),
                      configs=(CoreConfig(iw_entries=64),),
                      mems=(MemorySpec(mshrs=2),),
                      instructions=N, warmup=W)
        (spec,) = sweep.expand()
        assert spec.config.iw_entries == 64
        assert spec.config.mem == MemorySpec(mshrs=2)


# ------------------------------------------------------ stats + execution


class TestCacheStatsSurface:
    def test_runner_populates_cache_stats(self):
        result = Session().run(ms())
        cache = result.stats.cache_stats
        assert set(cache) == {"l1i", "l1d", "l2"}
        assert cache["l1d"]["accesses"] > 0
        assert 0.0 < result.stats.cache_hit_rate("l1d") <= 1.0

    def test_mshr_stats_surface_and_round_trip(self, tmp_path):
        spec = ms(bench="stream_copy",
                  config=CoreConfig(mem=MemorySpec(mshrs=2)))
        store = ResultStore(tmp_path)
        result = Session(store=store).run(spec)
        assert result.stats.cache_stats["mshr"]["allocs"] > 0
        assert result.stats.mshr_occupancy_avg > 0.0
        # Store round trip keeps the whole cache_stats payload.
        warm = Session(store=ResultStore(tmp_path)).run(spec)
        assert warm.stats.cache_stats == result.stats.cache_stats

    def test_explicit_default_spec_is_bit_identical(self):
        # The normalized explicit spelling runs the same machine: every
        # serialized byte matches the default run.
        a = Session().run(ms())
        b = Session().run(ms(config=CoreConfig(mem=MemorySpec())))
        assert a.to_dict() == b.to_dict()

    def test_flywheel_runs_general_path(self):
        from repro.core.registry import get_kind

        config = (get_kind("flywheel").default_config()
                  .with_variant(mem=MemorySpec(mshrs=4)))
        result = Session().run(ms(kind="flywheel", bench="smoke",
                                  config=config))
        assert result.stats.committed >= N
        assert "mshr" in result.stats.cache_stats

    def test_cache_stats_rows_render_both_shapes(self):
        from repro.analysis.report import cache_stats_rows

        result = Session().run(ms(bench="stream_copy",
                                  config=CoreConfig(mem=MemorySpec(
                                      mshrs=2, prefetch="next_line"))))
        rows = {r["level"]: r for r in cache_stats_rows(result.stats)}
        assert 0.0 < rows["l1d"]["hit_rate"] <= 1.0
        assert rows["l1d"]["prefetches"] > 0
        assert rows["mshr"]["occupancy_avg"] > 0.0
        assert rows["mshr"]["accesses"] > 0     # allocs


class TestNonBlockingWins:
    def test_mshr4_beats_blocking_on_stream_copy(self):
        session = Session()
        specs = [ms(bench="stream_copy",
                    config=CoreConfig(mem=MemorySpec(mshrs=m)),
                    instructions=2500, warmup=1500)
                 for m in (1, 4)]
        blocking, nonblocking = session.map(specs)
        assert nonblocking.stats.ipc > blocking.stats.ipc

    def test_mshr4_beats_blocking_on_pointer_chase(self):
        session = Session()
        specs = [ms(bench="pointer_chase",
                    config=CoreConfig(mem=MemorySpec(mshrs=m)),
                    instructions=2500, warmup=1500)
                 for m in (1, 4)]
        blocking, nonblocking = session.map(specs)
        assert nonblocking.stats.ipc > blocking.stats.ipc


class TestMemSweepExperiment:
    def test_rows_and_acceptance_gate(self):
        from repro.experiments.common import ExperimentContext
        from repro.experiments.mem_sweep import MEM_BENCHMARKS, run

        ctx = ExperimentContext(instructions=1500, warmup=1000)
        rows = run(ctx)
        assert len(rows) == 2 * len(MEM_BENCHMARKS)
        by_key = {(r["benchmark"], r["kind"]): r for r in rows}
        gate = by_key[("stream_copy", "baseline")]
        assert gate["nonblocking_wins"]
        assert gate["mshr4"] > gate["blocking"]

    def test_presets_cover_the_experiment(self):
        from repro.campaign.presets import experiment_specs
        from repro.experiments.common import ExperimentContext
        from repro.experiments.mem_sweep import run

        ctx = ExperimentContext(instructions=1500, warmup=1000)
        specs = experiment_specs(("mem",), benchmarks=("gcc",),
                                 instructions=1500, warmup=1000)
        ctx.warm(specs)
        run(ctx)
        assert ctx.executed == 0            # presets covered everything


# ---------------------------------------------------------- dvfs coupling


class TestMissRateTelemetry:
    def test_occupancy_governor_steps_down_when_membound(self):
        from repro.dvfs import GovernorConfig
        from repro.dvfs.governors import OccupancyGovernor
        from repro.dvfs.telemetry import IntervalTelemetry

        gov = OccupancyGovernor(GovernorConfig(name="occupancy"))
        busy = IntervalTelemetry(committed=100, iw_occ=0.95)
        assert gov.decide(busy) == +1       # compute-bound: step up
        membound = IntervalTelemetry(committed=100, iw_occ=0.95,
                                     l1d_miss_rate=0.7)
        assert gov.decide(membound) == -1   # DRAM-bound: give it back

    def test_controller_reports_interval_miss_rate(self):
        from repro.core.config import ClockPlan
        from repro.dvfs import GovernorConfig
        from repro.dvfs.governors import OccupancyGovernor

        seen = []
        original = OccupancyGovernor.decide

        def spy(self, t):
            seen.append(t.l1d_miss_rate)
            return original(self, t)

        OccupancyGovernor.decide = spy
        try:
            Session().run_workload(
                "baseline", "pointer_chase", max_instructions=N, warmup=W,
                clock=ClockPlan(governor=GovernorConfig(name="occupancy",
                                                        interval=500)))
        finally:
            OccupancyGovernor.decide = original
        assert seen
        assert max(seen) > 0.5              # pointer_chase is DRAM-bound


# --------------------------------------------------------------- CLI layer


class TestCliSurface:
    def _warm_store(self, tmp_path):
        store = ResultStore(tmp_path)
        Session(store=store).run(
            ms(bench="stream_copy",
               config=CoreConfig(mem=MemorySpec(mshrs=2,
                                                prefetch="next_line"))))
        return store

    def test_export_csv_has_memory_columns(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        self._warm_store(tmp_path / "store")
        out = tmp_path / "out.csv"
        assert main(["export", "--csv", str(out),
                     "--store", str(tmp_path / "store")]) == 0
        with open(out, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        row = rows[0]
        assert row["mem"] == "mshr2+nl"
        assert 0.0 < float(row["l1d_hit_rate"]) <= 1.0
        assert float(row["mshr_occ_avg"]) > 0.0
        assert row["mshr_stall_cycles"] != ""

    def test_ls_shows_mem_label(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        self._warm_store(tmp_path / "store")
        assert main(["ls", "--store", str(tmp_path / "store")]) == 0
        assert "mem=mshr2+nl" in capsys.readouterr().out

    def test_ls_json_carries_mem_field(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        self._warm_store(tmp_path / "store")
        assert main(["ls", "--json",
                     "--store", str(tmp_path / "store")]) == 0
        (summary,) = json.loads(capsys.readouterr().out)
        assert summary["mem"] == "mshr2+nl"
