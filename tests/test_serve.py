"""HTTP/SSE campaign service: payload translation, routes, the SSE
lifecycle, cache-warm resubmission, and journal replay."""

import json
import threading
import urllib.request

import pytest

from repro.campaign import ResultStore, RunSpec
from repro.errors import CampaignError
from repro.serve import ServeApp, ServeClient, make_server
from repro.serve.payload import event_payload, specs_from_payload

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500

SWEEP = {"kinds": ["baseline", "flywheel"], "benchmarks": ["smoke"],
         "clocks": [400, 600], "instructions": N, "warmup": W}


@pytest.fixture()
def service(tmp_path):
    store = ResultStore(tmp_path)
    app = ServeApp(store, jobs=2, retries=0, backoff_s=0.01)
    server = make_server(app, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield app, ServeClient(f"http://{host}:{port}", timeout_s=60)
    finally:
        server.shutdown()
        server.server_close()


class TestPayload:
    def test_sweep_expansion(self):
        specs = specs_from_payload(SWEEP)
        assert len(specs) == 4
        assert {s.kind for s in specs} == {"baseline", "flywheel"}
        assert {s.clock.base_mhz for s in specs} == {400.0, 600.0}
        assert all(s.instructions == N for s in specs)

    def test_clock_forms(self):
        bare = specs_from_payload({"benchmarks": ["smoke"], "clocks": [500],
                                   "instructions": N, "warmup": W})
        rich = specs_from_payload(
            {"benchmarks": ["smoke"],
             "clocks": [{"base_mhz": 500.0,
                         "governor": {"name": "occupancy"}}],
             "instructions": N, "warmup": W})
        assert bare[0].clock.base_mhz == 500.0
        assert rich[0].clock.governor.name == "occupancy"

    def test_explicit_specs_roundtrip_and_dedup(self):
        payload = RunSpec(kind="baseline", bench="smoke",
                          instructions=N, warmup=W).to_dict()
        specs = specs_from_payload({"specs": [payload, payload]})
        assert len(specs) == 1
        assert specs[0].bench == "smoke"

    @pytest.mark.parametrize("bad", [
        [],                                  # not an object
        {},                                  # no benchmarks
        {"specs": []},                       # empty spec list
        {"benchmarks": ["smoke"], "clocks": ["fast"]},
        {"benchmarks": ["smoke"], "kinds": ["no-such-kind"]},
    ])
    def test_bad_payloads_raise(self, bad):
        with pytest.raises(CampaignError):
            specs_from_payload(bad)

    def test_event_payload_is_json_safe(self, tmp_path):
        from repro.campaign.scheduler import submit_campaign

        captured = []
        submit_campaign(
            [RunSpec(kind="baseline", bench="smoke",
                     instructions=N, warmup=W)],
            ResultStore(tmp_path),
            on_event=lambda e: captured.append(event_payload(e))).execute()
        for body in captured:
            json.dumps(body)
        result = next(b for b in captured if b["event"] == "result")
        assert result["kind"] == "baseline" and result["source"] == "run"
        assert result["stats"]["committed"] > 0
        summary = captured[-1]
        assert summary["event"] == "summary"
        assert summary["executed"] == 1


class TestService:
    def test_healthz(self, service):
        _, client = service
        health = client.health()
        assert health["ok"] is True and health["records"] == 0

    def test_submit_tail_results_lifecycle(self, service):
        app, client = service
        response = client.submit(SWEEP)
        assert response["total"] == 4
        cid = response["campaign"]

        events = list(client.events(cid))
        kinds = [k for k, _ in events]
        assert kinds[0] == "plan" and kinds[-1] == "summary"
        assert kinds.count("result") == 4
        summary = events[-1][1]
        assert summary["executed"] == 4 and summary["quarantined"] == 0

        # Indexed /results answers filters without a full listing.
        rows = client.results(kind="flywheel")
        assert len(rows) == 2
        assert {row["kind"] for row in rows} == {"flywheel"}
        assert client.results(limit=3) and len(client.results(limit=3)) == 3

        status = client.status(cid)
        assert status["complete"] is True
        assert status["states"]["done"] == 4
        assert [c["campaign"] for c in client.campaigns()] == [cid]

    def test_warm_resubmission_is_all_hits(self, service):
        _, client = service
        first = client.submit(SWEEP)
        assert list(client.events(first["campaign"]))[-1][1]["executed"] == 4
        second = client.submit(SWEEP)
        assert second["campaign"] != first["campaign"]
        summary = list(client.events(second["campaign"]))[-1][1]
        assert summary["hits"] == 4 and summary["executed"] == 0

    def test_replay_after_feed_is_gone(self, service):
        app, client = service
        cid = client.submit(SWEEP)["campaign"]
        live = list(client.events(cid))
        app.feeds.clear()              # daemon restarted, journal remains
        replay = list(client.events(cid))
        kinds = [k for k, _ in replay]
        assert kinds[0] == "plan" and kinds[-1] == "summary"
        assert kinds.count("result") == 4
        assert replay[-1][1]["replayed"] is True
        # Replayed results carry the stored stats.
        live_stats = sorted(json.dumps(d["stats"], sort_keys=True)
                            for k, d in live if k == "result")
        replay_stats = sorted(json.dumps(d["stats"], sort_keys=True)
                              for k, d in replay if k == "result")
        assert live_stats == replay_stats

    def test_error_statuses(self, service):
        _, client = service
        with pytest.raises(CampaignError, match="HTTP 400"):
            client.submit({"clocks": [400]})            # no benchmarks
        with pytest.raises(CampaignError, match="HTTP 404"):
            client.status("nonexistent")
        with pytest.raises(CampaignError, match="HTTP 404"):
            list(client.events("nonexistent"))
        base = client.base_url
        with urllib.request.urlopen(f"{base}/healthz") as response:
            assert response.status == 200
        request = urllib.request.Request(f"{base}/campaigns",
                                         data=b"{not json",
                                         headers={"Content-Type":
                                                  "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404

    def test_sse_wire_format(self, service):
        _, client = service
        cid = client.submit({"benchmarks": ["smoke"], "instructions": N,
                             "warmup": W})["campaign"]
        url = f"{client.base_url}/campaigns/{cid}/events"
        with urllib.request.urlopen(url) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            raw = response.read().decode("utf-8")
        frames = [f for f in raw.split("\n\n") if f]
        assert frames[0].startswith("id: 0\nevent: plan\ndata: ")
        for frame in frames:
            lines = frame.splitlines()
            assert lines[0].startswith("id: ")
            assert lines[1].startswith("event: ")
            json.loads(lines[2][len("data: "):])
        assert "event: summary" in frames[-1]
