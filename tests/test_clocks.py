"""Unit + property tests for the multi-clock-domain kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks import ClockDomain, SyncFifo, TickScheduler, mhz_to_period_ps
from repro.errors import ConfigError


class TestClockDomain:
    def test_period(self):
        assert mhz_to_period_ps(1000.0) == 1000
        assert mhz_to_period_ps(2000.0) == 500

    def test_bad_frequency(self):
        with pytest.raises(ConfigError):
            mhz_to_period_ps(0)

    def test_advance(self):
        dom = ClockDomain("d", 1000.0)
        assert dom.advance() == 0
        assert dom.advance() == 1000
        assert dom.cycles == 2

    def test_set_frequency_monotonic(self):
        dom = ClockDomain("d", 1000.0)
        dom.advance()
        dom.set_frequency(2000.0, now_ps=1500)
        t = dom.advance()
        assert t >= 1000
        assert dom.period_ps == 500

    def test_retime_mid_period_keeps_scheduled_tick(self):
        """A switch between ticks leaves the already-scheduled edge in
        place; the new period applies from that edge onwards (the DVFS
        governors retune exactly like the trace-mode switch does)."""
        dom = ClockDomain("d", 1000.0)
        dom.advance()                          # t=0, next at 1000
        dom.set_frequency(2000.0, now_ps=500)  # mid-period
        assert dom.advance() == 1000           # pending edge unchanged
        assert dom.advance() == 1500           # new 500 ps period after

    def test_retime_clamps_stale_tick_to_now(self):
        """Switching with a next tick in the past pulls it up to ``now``
        — time never runs backwards through a frequency change."""
        dom = ClockDomain("d", 1000.0)         # next tick would be 0
        dom.set_frequency(500.0, now_ps=2500)
        assert dom.advance() == 2500
        assert dom.advance() == 2500 + 2000

    def test_repeated_switches_at_same_timestamp_last_wins(self):
        """Several governor/mode switches in one cycle collapse to the
        final frequency; tick timestamps stay non-decreasing."""
        dom = ClockDomain("d", 1000.0)
        dom.advance()                          # t=0, next at 1000
        dom.set_frequency(2000.0, now_ps=1000)
        dom.set_frequency(500.0, now_ps=1000)
        dom.set_frequency(1900.0, now_ps=1000)
        assert dom.period_ps == mhz_to_period_ps(1900.0)
        last = -1
        for _ in range(5):
            t = dom.advance()
            assert t >= last
            last = t

    def test_switch_at_tick_timestamp_reschedules_from_pending_edge(self):
        """A switch issued at exactly the pending tick's time keeps that
        tick (ties are not pushed into the future)."""
        dom = ClockDomain("d", 1000.0)
        dom.advance()                          # next at 1000
        dom.set_frequency(4000.0, now_ps=1000)
        assert dom.advance() == 1000
        assert dom.advance() == 1250


class TestScheduler:
    def test_needs_domains(self):
        with pytest.raises(ConfigError):
            TickScheduler([])

    def test_interleaving_2x(self):
        fast = ClockDomain("fast", 2000.0)
        slow = ClockDomain("slow", 1000.0)
        sched = TickScheduler([fast, slow])
        order = [sched.next_event()[1].name for _ in range(6)]
        # fast ticks twice per slow tick (ties go to list order)
        assert order.count("fast") == 4
        assert order.count("slow") == 2

    def test_time_never_decreases(self):
        a = ClockDomain("a", 1300.0)
        b = ClockDomain("b", 950.0)
        sched = TickScheduler([a, b])
        last = -1
        for _ in range(200):
            t, _dom = sched.next_event()
            assert t >= last
            last = t


@settings(max_examples=30, deadline=None)
@given(fa=st.floats(min_value=100, max_value=5000),
       fb=st.floats(min_value=100, max_value=5000))
def test_scheduler_tick_ratio(fa, fb):
    """Over a long window, tick counts are proportional to frequencies."""
    a = ClockDomain("a", fa)
    b = ClockDomain("b", fb)
    sched = TickScheduler([a, b])
    horizon = 2_000_000  # 2 us
    while sched.now_ps < horizon:
        sched.next_event()
    expect_a = horizon / a.period_ps
    expect_b = horizon / b.period_ps
    assert a.cycles == pytest.approx(expect_a, rel=0.02)
    assert b.cycles == pytest.approx(expect_b, rel=0.02)


class TestDrainUntil:
    """Skip-ahead over provably idle ticks (the gated-FE fast path)."""

    def test_consumes_ticks_strictly_before_horizon(self):
        fast = ClockDomain("fast", 2000.0)   # 500 ps period
        n = TickScheduler([fast]).drain_until(fast, 2000)
        # Ticks at 0, 500, 1000, 1500 are before 2000; the tick AT the
        # horizon is excluded (ties belong to the other domain's handler).
        assert n == 4
        assert fast.cycles == 4
        assert fast.next_tick_ps == 2000

    def test_noop_at_or_past_horizon(self):
        dom = ClockDomain("d", 1000.0)
        sched = TickScheduler([dom])
        assert sched.drain_until(dom, 0) == 0
        dom.advance()
        assert sched.drain_until(dom, dom.next_tick_ps) == 0
        assert dom.cycles == 1

    def test_equivalent_to_stepping(self):
        """Draining must advance exactly like popping each tick."""
        a = ClockDomain("a", 1300.0)
        b = ClockDomain("b", 1300.0)
        horizon = 987_654
        stepped = 0
        while a.next_tick_ps < horizon:
            a.advance()
            stepped += 1
        drained = TickScheduler([b]).drain_until(b, horizon)
        assert drained == stepped
        assert b.cycles == a.cycles
        assert b.next_tick_ps == a.next_tick_ps

    def test_interleaving_preserved_after_drain(self):
        """After a bulk skip, the scheduler keeps global time order."""
        be = ClockDomain("be", 950.0)
        fe = ClockDomain("fe", 1900.0)
        sched = TickScheduler([be, fe])
        sched.next_event()                      # be tick at t=0
        sched.drain_until(fe, be.next_tick_ps)  # consume gated fe ticks
        last = -1
        for _ in range(50):
            t, _dom = sched.next_event()
            assert t >= last
            last = t


@settings(max_examples=40, deadline=None)
@given(f_fast=st.floats(min_value=100, max_value=5000),
       f_slow=st.floats(min_value=100, max_value=5000))
def test_drain_until_matches_stepped_counts(f_fast, f_slow):
    """For any frequency ratio (including awkward, non-integer ones),
    bulk-draining one domain up to the other's next tick consumes exactly
    the ticks a stepped scheduler would hand to it first."""
    a1 = ClockDomain("a", f_fast)
    b1 = ClockDomain("b", f_slow)
    stepped = TickScheduler([b1, a1])
    _t, dom = stepped.next_event()
    assert dom is b1                 # t=0 tie goes to the first-registered
    popped_a = 0
    while True:
        _t, dom = stepped.next_event()
        if dom is b1:
            break
        popped_a += 1
    a2 = ClockDomain("a", f_fast)
    b2 = ClockDomain("b", f_slow)
    sched2 = TickScheduler([b2, a2])
    b2.advance()                     # mirror b's first tick
    drained = sched2.drain_until(a2, b2.next_tick_ps)
    assert drained == popped_a
    assert a2.cycles == a1.cycles
    assert a2.next_tick_ps == a1.next_tick_ps


class TestSyncFifo:
    def test_latency_gates_visibility(self):
        fifo = SyncFifo("f")
        fifo.push("x", now_ps=0, latency_ps=100)
        assert fifo.peek_ready(50) is None
        assert fifo.peek_ready(100) == "x"

    def test_fifo_order(self):
        fifo = SyncFifo("f")
        for i in range(5):
            fifo.push(i, now_ps=i, latency_ps=10)
        assert fifo.pop_ready(100) == [0, 1, 2, 3, 4]

    def test_capacity_backpressure(self):
        fifo = SyncFifo("f", capacity=2)
        assert fifo.push(1, 0, 10)
        assert fifo.push(2, 0, 10)
        assert not fifo.push(3, 0, 10)
        fifo.pop_ready(100)
        assert fifo.push(3, 100, 10)

    def test_pop_limit(self):
        fifo = SyncFifo("f")
        for i in range(5):
            fifo.push(i, 0, 0)
        assert fifo.pop_ready(0, limit=2) == [0, 1]
        assert len(fifo) == 3

    def test_clear(self):
        fifo = SyncFifo("f")
        fifo.push(1, 0, 0)
        fifo.clear()
        assert fifo.pop_ready(10) == []

    def test_exact_boundary_is_mature(self):
        """An entry matures at exactly push_time + latency, not after."""
        fifo = SyncFifo("f")
        fifo.push("x", now_ps=1000, latency_ps=500)
        assert fifo.peek_ready(1499) is None
        assert fifo.peek_ready(1500) == "x"

    def test_cross_domain_latency_at_unequal_ratio(self):
        """Entries pushed on fast-domain ticks become visible to the slow
        domain only after the synchronization latency, whatever the
        (non-integer) frequency ratio."""
        fe = ClockDomain("fe", 1300.0)
        be = ClockDomain("be", 950.0)
        sched = TickScheduler([be, fe])
        fifo = SyncFifo("dispatch")
        latency = be.period_ps          # one consumer cycle
        crossings = []
        for _ in range(200):
            t, dom = sched.next_event()
            if dom is fe:
                fifo.push(t, t, latency)
            else:
                for pushed_t in fifo.pop_ready(t):
                    crossings.append((pushed_t, t))
        assert crossings
        for pushed_t, popped_t in crossings:
            assert popped_t - pushed_t >= latency
        # FIFO order survives the clock crossing.
        assert [p for p, _ in crossings] == sorted(p for p, _ in crossings)

    def test_fifo_survives_consumer_ratio_change(self):
        """Entries pushed before a consumer frequency switch still mature
        in order and no earlier than push + latency, with the consumer's
        ticks interleaving correctly across the change (the Flywheel's
        dispatch FIFO sees exactly this at every governor retune and
        trace-mode switch)."""
        fe = ClockDomain("fe", 1900.0)
        be = ClockDomain("be", 950.0)
        sched = TickScheduler([be, fe])
        fifo = SyncFifo("dispatch")
        crossings = []
        switched = False
        for _ in range(400):
            t, dom = sched.next_event()
            if dom is fe:
                # Latency is one *consumer* cycle at the period current
                # at push time, as the core computes it.
                fifo.push(t, t, be.period_ps)
            else:
                for pushed_t in fifo.pop_ready(t):
                    crossings.append((pushed_t, t))
                if not switched and t >= 50_000:
                    be.set_frequency(1425.0, t)   # mid-run speed-up
                    switched = True
        assert switched and crossings
        # Maturity and FIFO order hold across the ratio change.
        pushed_order = [p for p, _t in crossings]
        assert pushed_order == sorted(pushed_order)
        for pushed_t, popped_t in crossings:
            assert popped_t >= pushed_t

    def test_entry_waits_for_next_consumer_tick(self):
        """A push landing between consumer ticks is seen at the first
        consumer tick past its maturity (ratio-boundary case)."""
        be = ClockDomain("be", 1000.0)       # ticks at 0, 1000, 2000...
        fifo = SyncFifo("f")
        fifo.push("x", now_ps=1100, latency_ps=500)   # mature at 1600
        be.advance()                          # t=0
        be.advance()                          # t=1000: not mature yet
        assert fifo.peek_ready(1000) is None
        t = be.advance()                      # t=2000: first tick >= 1600
        assert t == 2000
        assert fifo.pop_ready(t) == ["x"]


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 500)),
                      min_size=1, max_size=50))
def test_sync_fifo_never_reorders(items):
    """Entries mature in push order regardless of latencies."""
    fifo = SyncFifo("f")
    now = 0
    for i, (dt, lat) in enumerate(items):
        now += dt
        fifo.push(i, now, lat)
    out = fifo.pop_ready(now + 1000)
    assert out == sorted(out)
    assert len(out) == len(items)
