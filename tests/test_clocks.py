"""Unit + property tests for the multi-clock-domain kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks import ClockDomain, SyncFifo, TickScheduler, mhz_to_period_ps
from repro.errors import ConfigError


class TestClockDomain:
    def test_period(self):
        assert mhz_to_period_ps(1000.0) == 1000
        assert mhz_to_period_ps(2000.0) == 500

    def test_bad_frequency(self):
        with pytest.raises(ConfigError):
            mhz_to_period_ps(0)

    def test_advance(self):
        dom = ClockDomain("d", 1000.0)
        assert dom.advance() == 0
        assert dom.advance() == 1000
        assert dom.cycles == 2

    def test_set_frequency_monotonic(self):
        dom = ClockDomain("d", 1000.0)
        dom.advance()
        dom.set_frequency(2000.0, now_ps=1500)
        t = dom.advance()
        assert t >= 1000
        assert dom.period_ps == 500


class TestScheduler:
    def test_needs_domains(self):
        with pytest.raises(ConfigError):
            TickScheduler([])

    def test_interleaving_2x(self):
        fast = ClockDomain("fast", 2000.0)
        slow = ClockDomain("slow", 1000.0)
        sched = TickScheduler([fast, slow])
        order = [sched.next_event()[1].name for _ in range(6)]
        # fast ticks twice per slow tick (ties go to list order)
        assert order.count("fast") == 4
        assert order.count("slow") == 2

    def test_time_never_decreases(self):
        a = ClockDomain("a", 1300.0)
        b = ClockDomain("b", 950.0)
        sched = TickScheduler([a, b])
        last = -1
        for _ in range(200):
            t, _dom = sched.next_event()
            assert t >= last
            last = t


@settings(max_examples=30, deadline=None)
@given(fa=st.floats(min_value=100, max_value=5000),
       fb=st.floats(min_value=100, max_value=5000))
def test_scheduler_tick_ratio(fa, fb):
    """Over a long window, tick counts are proportional to frequencies."""
    a = ClockDomain("a", fa)
    b = ClockDomain("b", fb)
    sched = TickScheduler([a, b])
    horizon = 2_000_000  # 2 us
    while sched.now_ps < horizon:
        sched.next_event()
    expect_a = horizon / a.period_ps
    expect_b = horizon / b.period_ps
    assert a.cycles == pytest.approx(expect_a, rel=0.02)
    assert b.cycles == pytest.approx(expect_b, rel=0.02)


class TestSyncFifo:
    def test_latency_gates_visibility(self):
        fifo = SyncFifo("f")
        fifo.push("x", now_ps=0, latency_ps=100)
        assert fifo.peek_ready(50) is None
        assert fifo.peek_ready(100) == "x"

    def test_fifo_order(self):
        fifo = SyncFifo("f")
        for i in range(5):
            fifo.push(i, now_ps=i, latency_ps=10)
        assert fifo.pop_ready(100) == [0, 1, 2, 3, 4]

    def test_capacity_backpressure(self):
        fifo = SyncFifo("f", capacity=2)
        assert fifo.push(1, 0, 10)
        assert fifo.push(2, 0, 10)
        assert not fifo.push(3, 0, 10)
        fifo.pop_ready(100)
        assert fifo.push(3, 100, 10)

    def test_pop_limit(self):
        fifo = SyncFifo("f")
        for i in range(5):
            fifo.push(i, 0, 0)
        assert fifo.pop_ready(0, limit=2) == [0, 1]
        assert len(fifo) == 3

    def test_clear(self):
        fifo = SyncFifo("f")
        fifo.push(1, 0, 0)
        fifo.clear()
        assert fifo.pop_ready(10) == []


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 500)),
                      min_size=1, max_size=50))
def test_sync_fifo_never_reorders(items):
    """Entries mature in push order regardless of latencies."""
    fifo = SyncFifo("f")
    now = 0
    for i, (dt, lat) in enumerate(items):
        now += dt
        fifo.push(i, now, lat)
    out = fifo.pop_ready(now + 1000)
    assert out == sorted(out)
    assert len(out) == len(items)
