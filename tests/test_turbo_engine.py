"""Turbo-backend edge cases: skip-ahead vs. every observer (PR 7).

The turbo loop's replay skip-ahead bulk-advances the back-end clock
across provably-idle spans. Three observers make a naive jump wrong,
and each gets a pin here against the legacy engine:

* the DVFS governor's interval hook must fire at exactly the cycles it
  would have fired tick-by-tick (a jumped interval shifts every later
  freq-trace point);
* a flight-recorder window whose ``start`` falls inside a jumped span
  must open at the same event as under the legacy engine;
* the deadlock watchdog must trip at the same cycle with the same
  snapshot even when the no-commit window elapses inside a batch.

The NumPy gate for the ``repro[turbo]`` extra is pinned at the bottom:
absence must surface as the canonical ConfigError at spec construction,
never as a deep ImportError.
"""

import pytest

from repro.core.config import ClockPlan, CoreConfig
from repro.core.engine.turbo import HAVE_NUMPY
from repro.core.sim import execute_kind
from repro.dvfs import GovernorConfig
from repro.errors import ConfigError, DeadlockError
from repro.obs.spec import TraceSpec

#: The edge-case pins need to *run* the turbo backend; the gate tests
#: below do not (they exercise exactly the NumPy-absent path).
turbo_required = pytest.mark.skipif(
    not HAVE_NUMPY, reason="turbo extra (NumPy) not installed")


def _pair(kind, bench, n=8000, w=3000, clock=None, **cfg_kw):
    out = []
    for engine in ("legacy", "turbo"):
        config = CoreConfig(engine=engine, **cfg_kw)
        out.append(execute_kind(kind, bench, config=config, clock=clock,
                                max_instructions=n, warmup=w))
    return out


@turbo_required
class TestSkipAheadEdges:
    @pytest.mark.parametrize("gov", ("occupancy", "ipc_ladder"))
    def test_jump_never_crosses_a_dvfs_interval(self, gov):
        # interval=200 is far shorter than typical replay idle spans, so
        # a skip-ahead that ignored ``dvfs.next_check`` would jump check
        # cycles and shift the whole frequency trace.
        clock = ClockPlan(governor=GovernorConfig(name=gov, interval=200))
        legacy, turbo = _pair("flywheel", "gcc", clock=clock)
        assert legacy.stats.freq_trace == turbo.stats.freq_trace
        assert legacy.stats.dvfs_retunes == turbo.stats.dvfs_retunes
        assert legacy.stats.to_dict() == turbo.stats.to_dict()

    @pytest.mark.parametrize("start", (2500, 5001, 9000))
    def test_trace_window_opening_mid_jump(self, start):
        # Recorder windows are [start, stop) in back-end cycles. Placing
        # start at arbitrary odd points guarantees some windows open
        # inside a replay idle span; the serialized ring must still be
        # byte-identical (same first event, same drop counts).
        spec = TraceSpec(buffer=1 << 16, start=start, stop=start + 1500)
        legacy, turbo = _pair("flywheel", "gcc", trace=spec)
        assert legacy.trace == turbo.trace
        assert legacy.stats.to_dict() == turbo.stats.to_dict()

    @pytest.mark.parametrize("window,mode", ((96, "CREATE"),
                                             (128, "EXECUTE")))
    def test_watchdog_arms_inside_a_batch(self, window, mode):
        # window=128 elapses mid-replay (EXECUTE mode) — inside the span
        # the turbo loop processes as a batch — so the bulk advance must
        # stop at the trip cycle, not sail past it. Both engines must
        # fail at the same cycle with the same structured snapshot.
        trips = []
        for engine in ("legacy", "turbo"):
            config = CoreConfig(engine=engine, deadlock_window=window)
            with pytest.raises(DeadlockError) as err:
                execute_kind("flywheel", "gcc", config=config,
                             max_instructions=8000, warmup=3000)
            assert mode in str(err.value)
            trips.append((str(err.value), err.value.snapshot))
        assert trips[0] == trips[1]


class TestNumpyGate:
    def test_missing_numpy_is_a_config_error(self, monkeypatch):
        # Simulate the extra not being installed: the spec must fail at
        # construction with the actionable install hint.
        import repro.core.engine.turbo as turbo_pkg

        monkeypatch.setattr(turbo_pkg, "HAVE_NUMPY", False)
        with pytest.raises(ConfigError, match=r"repro\[turbo\]"):
            CoreConfig(engine="turbo")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            CoreConfig(engine="warp")
