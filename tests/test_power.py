"""Tests for the power/energy models."""

import pytest

from repro.core.config import ClockPlan
from repro.core.sim import run_baseline, run_flywheel
from repro.errors import ConfigError
from repro.power import (
    ACCESS_ENERGY_PJ,
    TECH_130,
    TECH_60,
    TECH_90,
    TECH_180,
    TechNode,
    clock_energy_pj,
    dynamic_energy_pj,
    energy_report,
    leakage_power_w,
)
from repro.power.leakage import baseline_structures, flywheel_structures


class TestTechnology:
    def test_vdd_above_vt(self):
        with pytest.raises(ConfigError):
            TechNode("bad", 0.13, vdd=0.2, vt=0.3, leak_na_per_device=1)

    def test_dynamic_energy_shrinks_with_node(self):
        assert TECH_60.dyn_scale < TECH_90.dyn_scale < TECH_130.dyn_scale

    def test_leakage_grows_with_node_shrink(self):
        assert (TECH_90.leak_na_per_device > TECH_130.leak_na_per_device
                > TECH_180.leak_na_per_device)


class TestDynamicEnergy:
    def test_counts_times_energy(self):
        e = dynamic_energy_pj({"fu_op": 10}, TECH_180)
        assert e["fu_op"] == pytest.approx(10 * ACCESS_ENERGY_PJ["fu_op"])

    def test_unknown_events_ignored(self):
        assert dynamic_energy_pj({"martian_op": 5}, TECH_130) == {}

    def test_flywheel_rf_premium(self):
        small = dynamic_energy_pj({"rf_read": 100}, TECH_130)
        big = dynamic_energy_pj({"rf_read": 100}, TECH_130, flywheel_rf=True)
        assert big["rf_read"] > small["rf_read"]


class TestLeakage:
    def test_static_power_ordering(self):
        base = baseline_structures()
        assert (leakage_power_w(TECH_90, base)
                > leakage_power_w(TECH_130, base))

    def test_flywheel_leaks_more_devices(self):
        assert (sum(flywheel_structures().values())
                > sum(baseline_structures().values()))


class TestClockTree:
    def test_gated_fe_saves(self):
        busy = clock_energy_pj(TECH_130, 1000, fe_active_cycles=1000,
                               be_cycles=1000)
        gated = clock_energy_pj(TECH_130, 1000, fe_active_cycles=100,
                                be_cycles=1000)
        assert gated < busy


class TestEnergyReport:
    @pytest.fixture(scope="class")
    def runs(self):
        rb = run_baseline("mesa", max_instructions=15000, warmup=40000)
        rf = run_flywheel("mesa", clock=ClockPlan(fe_speedup=1.0,
                                                  be_speedup=0.5),
                          max_instructions=15000, warmup=40000)
        return rb, rf

    def test_breakdown_sums(self, runs):
        rb, _rf = runs
        rep = energy_report(rb, TECH_130)
        assert rep.total_pj == pytest.approx(
            rep.dynamic_pj + rep.clock_pj + rep.static_pj)
        assert rep.power_w > 0

    def test_flywheel_saves_energy_on_loopy_code(self, runs):
        rb, rf = runs
        eb = energy_report(rb, TECH_130)
        ef = energy_report(rf, TECH_130)
        assert ef.total_pj < eb.total_pj

    def test_static_fraction_grows_with_shrink(self, runs):
        rb, _rf = runs
        fractions = [energy_report(rb, t).static_fraction
                     for t in (TECH_130, TECH_90, TECH_60)]
        assert fractions == sorted(fractions)

    def test_savings_shrink_with_node(self, runs):
        """Fig. 15's trend: relative energy creeps up as leakage grows."""
        rb, rf = runs
        ratios = []
        for tech in (TECH_130, TECH_90, TECH_60):
            eb = energy_report(rb, tech)
            ef = energy_report(rf, tech)
            ratios.append(ef.total_pj / eb.total_pj)
        assert ratios[0] <= ratios[1] <= ratios[2] + 0.02
