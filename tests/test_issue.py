"""Unit tests for the issue window (synchronous and dual-clock)."""

import pytest

from repro.errors import SimulationError
from repro.execute.fu import FuPool
from repro.isa import DynInstr, OpClass
from repro.issue.dual_clock import DualClockIssueWindow
from repro.issue.window import IssueWindow


def _fu():
    return FuPool(4, 2, 2, 2, 1)


def _instr(seq, op=OpClass.INT_ALU, dest_tag=-1, src_tags=()):
    dyn = DynInstr(seq=seq, pc=seq * 4, op=op, dest=None, srcs=(), sid=seq)
    dyn.dest_tag = dest_tag
    dyn.src_tags = tuple(src_tags)
    return dyn


class TestIssueWindow:
    def test_ready_instr_issues(self):
        iw = IssueWindow(16, 6)
        fu = _fu()
        fu.begin_cycle(1)
        iw.insert(_instr(0), lambda t: True, earliest=1)
        assert len(iw.select(1, fu)) == 1
        assert len(iw) == 0

    def test_earliest_gates_selection(self):
        iw = IssueWindow(16, 6)
        fu = _fu()
        iw.insert(_instr(0), lambda t: True, earliest=5)
        fu.begin_cycle(4)
        assert iw.select(4, fu) == []
        fu.begin_cycle(5)
        assert len(iw.select(5, fu)) == 1

    def test_wakeup_on_broadcast(self):
        iw = IssueWindow(16, 6)
        fu = _fu()
        dep = _instr(0, src_tags=(7,))
        iw.insert(dep, lambda t: False, earliest=0)
        fu.begin_cycle(1)
        assert iw.select(1, fu) == []
        iw.broadcast(7, 2)
        fu.begin_cycle(2)
        assert len(iw.select(2, fu)) == 1   # back-to-back: same cycle

    def test_pipelined_wakeup_delays_dependents(self):
        iw = IssueWindow(16, 6, wakeup_extra_delay=1)
        fu = _fu()
        dep = _instr(0, src_tags=(7,))
        iw.insert(dep, lambda t: False, earliest=0)
        iw.broadcast(7, 2)
        fu.begin_cycle(2)
        assert iw.select(2, fu) == []       # back-to-back lost
        fu.begin_cycle(3)
        assert len(iw.select(3, fu)) == 1

    def test_oldest_first_and_width(self):
        iw = IssueWindow(32, 2)
        fu = _fu()
        for i in range(5):
            iw.insert(_instr(i), lambda t: True, earliest=0)
        fu.begin_cycle(1)
        picked = iw.select(1, fu)
        assert [d.seq for d in picked] == [0, 1]

    def test_fu_constraint(self):
        iw = IssueWindow(32, 6)
        fu = _fu()   # only 1 FP mul/div
        for i in range(3):
            iw.insert(_instr(i, op=OpClass.FP_MUL), lambda t: True, 0)
        fu.begin_cycle(1)
        assert len(iw.select(1, fu)) == 1

    def test_unpipelined_div_blocks_unit(self):
        iw = IssueWindow(32, 6)
        fu = _fu()   # 1 FP muldiv unit
        iw.insert(_instr(0, op=OpClass.FP_DIV), lambda t: True, 0)
        iw.insert(_instr(1, op=OpClass.FP_MUL), lambda t: True, 0)
        fu.begin_cycle(1)
        assert len(iw.select(1, fu)) == 1       # div claims the unit
        fu.begin_cycle(2)
        assert iw.select(2, fu) == []           # still reserved
        fu.begin_cycle(14)
        assert len(iw.select(14, fu)) == 1

    def test_stores_never_wait(self):
        iw = IssueWindow(16, 6)
        fu = _fu()
        store = _instr(0, op=OpClass.STORE, src_tags=(9, 10))
        iw.insert(store, lambda t: False, earliest=0)
        fu.begin_cycle(1)
        assert len(iw.select(1, fu)) == 1

    def test_overflow(self):
        iw = IssueWindow(2, 6)
        iw.insert(_instr(0), lambda t: True, 0)
        iw.insert(_instr(1), lambda t: True, 0)
        assert iw.free_slots == 0
        with pytest.raises(SimulationError):
            iw.insert(_instr(2), lambda t: True, 0)

    def test_flush(self):
        iw = IssueWindow(16, 6)
        iw.insert(_instr(0, src_tags=(3,)), lambda t: False, 0)
        iw.flush()
        assert len(iw) == 0
        iw.broadcast(3, 1)   # must not blow up on dead waiters


class TestDualClock:
    def test_dup_match_counts_raced_tags(self):
        iw = DualClockIssueWindow(16, 6, tag_window=2)
        iw.insert_synced(_instr(0), lambda t: True, earliest=1,
                         raced_tags=2)
        assert iw.caught_by_dup_match == 2

    def test_delay_network_adds_cycle(self):
        iw = DualClockIssueWindow(16, 6, delay_network=True)
        fu = _fu()
        iw.insert_synced(_instr(0), lambda t: True, earliest=1)
        fu.begin_cycle(1)
        assert iw.select(1, fu) == []
        fu.begin_cycle(2)
        assert len(iw.select(2, fu)) == 1

    def test_recent_window_pruned(self):
        iw = DualClockIssueWindow(16, 6, tag_window=2)
        for c in range(10):
            iw.broadcast(c, c)
        assert all(cycle >= 7 for cycle, _tag in iw._recent)


class TestFuPool:
    def test_group_atomicity(self):
        fu = _fu()   # 1 FP muldiv
        fu.begin_cycle(1)
        from repro.isa.opclasses import FuKind
        demands = [(FuKind.FP_MULDIV, 1, 4, False),
                   (FuKind.FP_MULDIV, 1, 4, False)]
        assert not fu.try_issue_group(demands)
        # nothing was claimed by the failed attempt
        assert fu.available(FuKind.FP_MULDIV) == 1

    def test_flush_releases_reservations(self):
        from repro.isa.opclasses import FuKind
        fu = _fu()
        fu.begin_cycle(1)
        fu.try_issue(FuKind.INT_MULDIV, 1, 12, unpipelined=True)
        fu.flush()
        fu.begin_cycle(2)
        assert fu.available(FuKind.INT_MULDIV) == 2
