"""Campaign engine: sweep expansion, store round-trips, cache behaviour,
parallel determinism, and the ExperimentContext cache-key fix."""

import json

import pytest

from repro.campaign import ResultStore, RunSpec, Sweep, dedup, run_campaign
from repro.campaign.spec import code_fingerprint
from repro.core.config import ClockPlan, CoreConfig, FlywheelConfig
from repro.core.sim import SimResult, run_baseline, run_flywheel
from repro.errors import CampaignError, WorkloadError

#: Tiny budgets: every simulated spec in this file finishes in ~50ms.
N, W = 1200, 2500


def spec(kind="baseline", bench="smoke", **kw):
    kw.setdefault("instructions", N)
    kw.setdefault("warmup", W)
    return RunSpec(kind=kind, bench=bench, **kw)


class TestRunSpec:
    def test_normalization_none_equals_defaults(self):
        assert spec() == spec(config=CoreConfig(), clock=ClockPlan())
        assert spec().cache_key() == spec(config=CoreConfig()).cache_key()

    def test_flywheel_normalizes_fly_and_config(self):
        s = spec(kind="flywheel")
        assert s.fly == FlywheelConfig()
        assert s.config == CoreConfig(phys_regs=512, regread_stages=2)

    def test_cache_key_covers_every_axis(self):
        base = spec()
        variants = [
            spec(bench="ijpeg"),
            spec(kind="flywheel"),
            spec(config=CoreConfig(iw_entries=64)),
            spec(clock=ClockPlan(base_mhz=1200.0)),
            spec(kind="flywheel", clock=ClockPlan(fe_speedup=0.5)),
            spec(seed=7),
            spec(instructions=N + 1),
            spec(warmup=W + 1),
            spec(mem_scale=2.0),
        ]
        keys = {s.cache_key() for s in variants} | {base.cache_key()}
        assert len(keys) == len(variants) + 1

    def test_cache_key_stable_across_calls(self):
        assert spec(seed=3).cache_key() == spec(seed=3).cache_key()

    def test_equal_specs_hash_equal_despite_int_float(self):
        # JSON renders 2 and 2.0 differently; coercion keeps the
        # spec==spec -> key==key invariant.
        assert (spec(mem_scale=2).cache_key()
                == spec(mem_scale=2.0).cache_key())
        assert (spec(clock=ClockPlan(base_mhz=950)).cache_key()
                == spec().cache_key())
        assert (spec(config=CoreConfig(iw_entries=64.0)).cache_key()
                == spec(config=CoreConfig(iw_entries=64)).cache_key())

    def test_config_cache_key_api(self):
        # The config dataclasses expose stable content hashing directly.
        assert CoreConfig().cache_key() == CoreConfig().cache_key()
        assert (CoreConfig(iw_entries=64).cache_key()
                != CoreConfig().cache_key())
        assert (FlywheelConfig(ec_kb=64).cache_key()
                != FlywheelConfig().cache_key())
        assert (ClockPlan(base_mhz=950).cache_key()
                == ClockPlan().cache_key())

    def test_code_fingerprint_ignores_presentation_layers(self):
        from repro.campaign.spec import SIM_PACKAGES

        assert "experiments" not in SIM_PACKAGES
        assert "campaign" not in SIM_PACKAGES
        assert "core" in SIM_PACKAGES and "workloads" in SIM_PACKAGES

    def test_cache_key_includes_code_fingerprint(self):
        payload = spec().payload()
        assert "code" not in payload          # payload is pure spec...
        assert len(code_fingerprint()) == 12  # ...key mixes the code hash

    def test_invalid_specs_rejected(self):
        with pytest.raises(CampaignError):
            spec(kind="turbo")
        with pytest.raises(WorkloadError):
            spec(bench="nonesuch")
        with pytest.raises(CampaignError):
            spec(kind="baseline", fly=FlywheelConfig())

    def test_variant_surfaces_non_default_axes(self):
        assert spec().variant() == {}
        assert spec(config=CoreConfig(iw_entries=64)).variant() == {
            "iw_entries": 64}
        fly_var = spec(kind="flywheel",
                       fly=FlywheelConfig(ec_kb=64, use_srt=False)).variant()
        assert fly_var == {"fly.ec_kb": 64, "fly.use_srt": False}
        assert "iw_entries=64" in spec(
            config=CoreConfig(iw_entries=64)).label

    def test_round_trip_through_dict(self):
        s = spec(kind="flywheel", clock=ClockPlan(fe_speedup=0.25),
                 fly=FlywheelConfig(ec_kb=64), seed=9, mem_scale=1.5)
        again = RunSpec.from_dict(json.loads(json.dumps(s.to_dict())))
        assert again == s
        assert again.cache_key() == s.cache_key()


class TestSweep:
    def test_cross_product_counts(self):
        sweep = Sweep(kinds=("flywheel",), benchmarks=("smoke", "ijpeg"),
                      clocks=(ClockPlan(), ClockPlan(fe_speedup=0.5)),
                      seeds=(1, 2), instructions=N, warmup=W)
        assert len(sweep.expand()) == 2 * 2 * 2

    def test_baseline_leg_collapses_fly_axis(self):
        # Two flywheel configs -> two flywheel jobs but ONE baseline job.
        sweep = Sweep(benchmarks=("smoke",),
                      flys=(None, FlywheelConfig(ec_kb=64)),
                      instructions=N, warmup=W)
        jobs = sweep.expand()
        assert len(jobs) == 3
        assert sum(1 for j in jobs if j.kind == "baseline") == 1

    def test_baseline_leg_collapses_speedup_axis(self):
        # The baseline core only sees base_mhz, so FE/BE speedup points
        # fold into one baseline job per base clock.
        sweep = Sweep(benchmarks=("smoke",),
                      clocks=(ClockPlan(), ClockPlan(fe_speedup=0.5,
                                                     be_speedup=0.5)),
                      instructions=N, warmup=W)
        jobs = sweep.expand()
        assert sum(1 for j in jobs if j.kind == "baseline") == 1
        assert sum(1 for j in jobs if j.kind == "flywheel") == 2

    def test_dedup_preserves_order(self):
        a, b = spec(), spec(bench="ijpeg")
        assert dedup([a, b, a, b, a]) == [a, b]


class TestStore:
    def test_round_trip_exact_stats(self, tmp_path):
        s = spec(kind="flywheel")
        result = s.execute()
        store = ResultStore(tmp_path)
        store.put(s.cache_key(), s, result)
        loaded = store.get(s.cache_key())
        assert loaded is not None
        assert loaded.stats.to_dict() == result.stats.to_dict()
        assert loaded.stats.events == result.stats.events
        assert loaded.clock == result.clock
        assert loaded.kind == "flywheel"
        assert loaded.l2_accesses == result.core.hierarchy.l2.stats.accesses
        assert loaded.core is None

    def test_detached_result_powers_energy_report(self, tmp_path):
        from repro.power import TECH_130, energy_report

        s = spec(kind="flywheel")
        result = s.execute()
        store = ResultStore(tmp_path)
        store.put(s.cache_key(), s, result)
        live = energy_report(result, TECH_130)
        detached = energy_report(store.get(s.cache_key()), TECH_130)
        assert detached.total_pj == pytest.approx(live.total_pj)
        assert detached.by_event == live.by_event

    def test_miss_and_hit_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        assert store.get(s.cache_key()) is None
        store.put(s.cache_key(), s, s.execute())
        assert store.get(s.cache_key()) is not None
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        store.put(s.cache_key(), s, s.execute())
        store._path(s.cache_key()).write_text("{not json")
        assert store.get(s.cache_key()) is None

    def test_len_and_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        for bench in ("smoke", "ijpeg"):
            s = spec(bench=bench)
            store.put(s.cache_key(), s, s.execute())
        assert len(store) == 2
        assert store.clean() == 2
        assert len(store) == 0


class TestCampaign:
    def jobs(self):
        return Sweep(benchmarks=("smoke",),
                     clocks=(ClockPlan(), ClockPlan(fe_speedup=0.5,
                                                    be_speedup=0.5)),
                     instructions=N, warmup=W).expand()

    def test_second_run_is_all_hits(self, tmp_path):
        jobs = self.jobs()
        first = run_campaign(jobs, store=ResultStore(tmp_path))
        assert (first.hits, first.executed) == (0, len(jobs))
        again = run_campaign(jobs, store=ResultStore(tmp_path))
        assert (again.hits, again.executed) == (len(jobs), 0)
        for job in jobs:
            assert (again.result_for(job).stats.to_dict()
                    == first.result_for(job).stats.to_dict())

    def test_parallel_matches_serial(self):
        jobs = [spec(seed=s) for s in (1, 2)] + \
               [spec(kind="flywheel", seed=s) for s in (1, 2)]
        serial = run_campaign(jobs, jobs=1)
        parallel = run_campaign(jobs, jobs=2)
        assert serial.executed == parallel.executed == len(jobs)
        for job in jobs:
            assert (serial.result_for(job).stats.to_dict()
                    == parallel.result_for(job).stats.to_dict())

    def test_overlapping_campaign_only_runs_new_jobs(self, tmp_path):
        jobs = self.jobs()
        run_campaign(jobs, store=ResultStore(tmp_path))
        wider = jobs + [spec(bench="ijpeg")]
        report = run_campaign(wider, store=ResultStore(tmp_path))
        assert (report.hits, report.executed) == (len(jobs), 1)


class TestExperimentContext:
    def test_config_override_no_longer_aliases(self):
        """Regression: same (bench, clock, tag) with different config=
        used to silently return the stale cached result."""
        from repro.experiments.common import ExperimentContext

        ctx = ExperimentContext(instructions=N, warmup=W,
                                benchmarks=("smoke",))
        default = ctx.baseline("smoke")
        shrunk = ctx.baseline("smoke", config=CoreConfig(iw_entries=8,
                                                         issue_width=2))
        assert shrunk is not default
        assert shrunk.stats.to_dict() != default.stats.to_dict()
        # Same for a flywheel fly= override.
        full = ctx.flywheel("smoke")
        tiny = ctx.flywheel("smoke", fly=FlywheelConfig(ec_kb=4))
        assert tiny is not full

    def test_warmed_context_executes_nothing(self, tmp_path):
        from repro.campaign.presets import experiment_specs
        from repro.experiments import fig11_same_clock, residency
        from repro.experiments.common import ExperimentContext

        benches = ("smoke",)
        ctx = ExperimentContext(instructions=N, warmup=W, benchmarks=benches,
                                store=ResultStore(tmp_path))
        specs = experiment_specs(("fig11", "residency"), benchmarks=benches,
                                 instructions=N, warmup=W)
        ctx.warm(specs, jobs=2)
        fig11_same_clock.run(ctx)
        residency.run(ctx)
        assert ctx.executed == 0

    def test_campaign_tables_match_serial_path(self, tmp_path):
        """The acceptance check in miniature: rows computed from a
        parallel, store-backed campaign equal the serial in-process ones."""
        from repro.campaign.presets import experiment_specs
        from repro.experiments import fig12_performance
        from repro.experiments.common import ExperimentContext

        benches = ("smoke",)
        serial_ctx = ExperimentContext(instructions=N, warmup=W,
                                       benchmarks=benches)
        serial_rows = fig12_performance.run(serial_ctx)

        camp_ctx = ExperimentContext(instructions=N, warmup=W,
                                     benchmarks=benches,
                                     store=ResultStore(tmp_path))
        camp_ctx.warm(experiment_specs(("fig12",), benchmarks=benches,
                                       instructions=N, warmup=W), jobs=2)
        camp_rows = fig12_performance.run(camp_ctx)
        assert camp_rows == serial_rows
        assert camp_ctx.executed == 0

    def test_seed_threads_into_runs(self):
        from repro.experiments.common import ExperimentContext

        a = ExperimentContext(instructions=N, warmup=W, seed=1)
        b = ExperimentContext(instructions=N, warmup=W, seed=2)
        assert (a.baseline("smoke").stats.to_dict()
                != b.baseline("smoke").stats.to_dict())


class TestMemScaleSymmetry:
    def test_flywheel_accepts_and_honours_mem_scale(self):
        fast = run_flywheel("smoke", max_instructions=N, warmup=W,
                            mem_scale=1.0)
        slow = run_flywheel("smoke", max_instructions=N, warmup=W,
                            mem_scale=8.0)
        assert slow.stats.total_be_cycles > fast.stats.total_be_cycles

    def test_matches_baseline_api(self):
        base = run_baseline("smoke", max_instructions=N, warmup=W,
                            mem_scale=8.0)
        fly = run_flywheel("smoke", max_instructions=N, warmup=W,
                           mem_scale=8.0)
        assert base.stats.committed > 0 and fly.stats.committed > 0

    def test_context_threads_mem_scale(self):
        from repro.experiments.common import ExperimentContext

        ctx = ExperimentContext(instructions=N, warmup=W)
        near = ctx.flywheel("smoke")
        far = ctx.flywheel("smoke", mem_scale=8.0)
        assert far is not near
        assert far.stats.total_be_cycles > near.stats.total_be_cycles


class TestCampaignCli:
    def run_cli(self, *argv):
        from repro.campaign.__main__ import main

        return main(list(argv))

    def test_run_ls_export_clean(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        csv_path = str(tmp_path / "out.csv")
        args = ["--experiments", "residency", "--benchmarks", "smoke",
                "--instructions", str(N), "--warmup", str(W),
                "--store", store, "--quiet"]
        assert self.run_cli("run", *args) == 0
        first = capsys.readouterr()
        assert "0 from cache" in first.err

        # Immediately repeated invocation: zero new simulations.
        assert self.run_cli("run", *args) == 0
        second = capsys.readouterr()
        assert "1 from cache, 0 simulated" in second.err
        assert "0 misses" in second.err
        # ...and bit-identical tables.
        assert second.out == first.out

        assert self.run_cli("ls", "--store", store) == 0
        assert "flywheel/smoke" in capsys.readouterr().out

        assert self.run_cli("export", "--store", store, "--csv",
                            csv_path) == 0
        header, row = open(csv_path).read().strip().splitlines()
        assert "ipc" in header and "smoke" in row

        assert self.run_cli("clean", "--store", store) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_ls_and_export_json(self, tmp_path, capsys):
        """Machine-readable store inspection: ls --json summaries and the
        lossless export --json record dump both parse and agree."""
        import json

        store = str(tmp_path / "cache")
        assert self.run_cli(
            "run", "--experiments", "residency", "--benchmarks", "smoke",
            "--instructions", str(N), "--warmup", str(W),
            "--store", store, "--quiet", "--no-tables") == 0
        capsys.readouterr()

        assert self.run_cli("ls", "--json", "--store", store) == 0
        summaries = json.loads(capsys.readouterr().out)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary["kind"] == "flywheel"
        assert summary["bench"] == "smoke"
        assert summary["committed"] >= N
        assert summary["governor"] is None
        assert summary["ipc"] > 0

        json_path = str(tmp_path / "out.json")
        assert self.run_cli("export", "--json", json_path,
                            "--store", store) == 0
        records = json.loads(open(json_path).read())
        assert len(records) == 1
        assert records[0]["key"] == summary["key"]
        assert records[0]["spec"]["bench"] == "smoke"
        assert records[0]["result"]["stats"]["committed"] >= N

        # Stdout variant parses too.
        assert self.run_cli("export", "--json", "--store", store) == 0
        assert json.loads(capsys.readouterr().out)[0]["key"] \
            == summary["key"]

    def test_ls_json_marks_damaged_records(self, tmp_path, capsys):
        from repro.campaign.store import ResultStore

        store_dir = str(tmp_path / "cache")
        store = ResultStore(store_dir)
        s = RunSpec(kind="baseline", bench="smoke", instructions=N,
                    warmup=W)
        store.put(s.cache_key(), s, s.execute())
        # Schema-valid JSON whose payload cannot be summarized.
        path = store._path(s.cache_key())
        record = json.loads(path.read_text())
        record["result"] = {"stats": "not-a-dict"}
        path.write_text(json.dumps(record))

        assert self.run_cli("ls", "--json", "--store", store_dir) == 0
        out = capsys.readouterr()
        rows = json.loads(out.out)
        assert rows == [{"key": s.cache_key(), "damaged": True}]
        assert "1 of 1 record(s)" in out.err

    def test_dry_run_lists_jobs(self, tmp_path, capsys):
        assert self.run_cli(
            "run", "--experiments", "fig11", "--benchmarks", "smoke",
            "--instructions", str(N), "--warmup", str(W),
            "--store", str(tmp_path), "--dry-run") == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3  # base + 2 flywheel

    def test_unknown_experiment_fails_cleanly(self, tmp_path, capsys):
        assert self.run_cli("run", "--experiments", "fig99",
                            "--store", str(tmp_path)) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestObservabilityOnCampaign:
    """PR-6 satellites: elapsed wall time in store records, and the
    trace axis participating in content addressing."""

    def test_trace_axis_changes_cache_key(self):
        from repro.obs import TraceSpec

        base = spec()
        traced = spec(config=CoreConfig(trace=TraceSpec(buffer=1024)))
        other = spec(config=CoreConfig(trace=TraceSpec(buffer=2048)))
        assert len({base.cache_key(), traced.cache_key(),
                    other.cache_key()}) == 3

    def test_untraced_payload_has_no_trace_key(self):
        from repro.obs import TraceSpec

        # Payload byte-compat with pre-TraceSpec records: trace=None is
        # dropped, exactly like mem=None.
        payload = spec().payload()
        assert "trace" not in payload["config"]
        traced = spec(config=CoreConfig(trace=TraceSpec(buffer=512)))
        assert traced.payload()["config"]["trace"]["buffer"] == 512

    def test_executor_records_elapsed_wall_time(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign([spec()], store=store)
        record = next(store.records())
        assert record["elapsed_s"] > 0

    def test_parallel_executor_records_elapsed(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign([spec(seed=1), spec(seed=2)], store=store, jobs=2)
        for record in store.records():
            assert record["elapsed_s"] > 0

    def test_ls_summary_surfaces_elapsed(self, tmp_path):
        from repro.campaign.__main__ import _ls_line, _ls_summary

        store = ResultStore(tmp_path)
        run_campaign([spec()], store=store)
        summary = _ls_summary(next(store.records()))
        assert summary["elapsed_s"] > 0
        assert "elapsed=" in _ls_line(summary)

    def test_csv_export_has_elapsed_column(self, tmp_path, capsys):
        from repro.campaign.__main__ import main as campaign_main

        store_dir = tmp_path / "store"
        run_campaign([spec()], store=ResultStore(store_dir))
        out_csv = tmp_path / "out.csv"
        assert campaign_main(["export", "--store", str(store_dir),
                              "--csv", str(out_csv)]) == 0
        header, row = out_csv.read_text().splitlines()[:2]
        idx = header.split(",").index("elapsed_s")
        assert float(row.split(",")[idx]) > 0

    def test_traced_result_survives_worker_process(self, tmp_path):
        from repro.obs import TraceSpec

        traced = spec(config=CoreConfig(trace=TraceSpec(buffer=2048)))
        store = ResultStore(tmp_path)
        # jobs=2 with a single miss still uses the pool when timeout set;
        # force the parallel path to cover pickling of traced results.
        report = run_campaign([traced], store=store, jobs=2, timeout_s=120)
        result = report.result_for(traced)
        assert result.trace is not None
        assert result.trace["events"]


class TestStoreEngineMetadata:
    def test_put_records_engine_top_level(self, tmp_path):
        store = ResultStore(tmp_path)
        legacy = spec()
        store.put(legacy.cache_key(), legacy, legacy.execute())
        record = next(store.records())
        assert record["engine"] == "legacy"

    def test_turbo_engine_recorded(self, tmp_path):
        pytest.importorskip("numpy")
        store = ResultStore(tmp_path)
        turbo = spec(config=CoreConfig(engine="turbo"))
        store.put(turbo.cache_key(), turbo, turbo.execute())
        record = next(store.records())
        assert record["engine"] == "turbo"

    def test_ls_summary_engine_falls_back_to_spec(self, tmp_path):
        """Records written before the engine metadata still summarize."""
        from repro.campaign.__main__ import _ls_summary

        store = ResultStore(tmp_path)
        s = spec()
        store.put(s.cache_key(), s, s.execute())
        path = store._path(s.cache_key())
        record = json.loads(path.read_text())
        del record["engine"]
        path.write_text(json.dumps(record))
        assert _ls_summary(next(store.records()))["engine"] == "legacy"


class TestLsElapsedAlignment:
    def _line(self, elapsed):
        from repro.campaign.__main__ import _ls_line

        summary = {
            "key": "k" * 40, "created": 1700000000.0, "code": "abc123def456",
            "engine": "legacy", "kind": "baseline", "bench": "smoke",
            "seed": None, "instructions": N, "warmup": W, "mem_scale": 1.0,
            "base_mhz": 400.0, "fe_speedup": None, "be_speedup": None,
            "governor": None, "mem": "", "variant": "",
            "committed": N, "cycles": 1000, "ipc": 1.2,
            "sim_time_ps": 1, "dvfs_retunes": 0, "elapsed_s": elapsed,
        }
        return _ls_line(summary)

    def test_none_and_value_rows_align(self):
        lines = [self._line(e) for e in (None, 0.05, 3.5, 1234.56)]
        columns = {line.index("baseline/smoke") for line in lines}
        assert len(columns) == 1
        assert "elapsed=       -" in lines[0]
        assert "elapsed=   0.05s" in lines[1]
        assert "elapsed=1234.56s" in lines[3]


class TestExportEngineColumns:
    def test_csv_has_code_and_engine_columns(self, tmp_path, capsys):
        from repro.campaign.__main__ import main as campaign_main

        store_dir = tmp_path / "store"
        run_campaign([spec()], store=ResultStore(store_dir))
        out_csv = tmp_path / "out.csv"
        assert campaign_main(["export", "--store", str(store_dir),
                              "--csv", str(out_csv)]) == 0
        header, row = out_csv.read_text().splitlines()[:2]
        cols = header.split(",")
        values = row.split(",")
        assert values[cols.index("engine")] == "legacy"
        # The code column matches the live fingerprint, making CSV rows
        # joinable with perf-history snapshots.
        assert values[cols.index("code")] == code_fingerprint()

    def test_export_json_augments_engineless_records(self, tmp_path,
                                                     capsys):
        from repro.campaign.__main__ import main as campaign_main

        store = ResultStore(tmp_path / "store")
        s = spec()
        store.put(s.cache_key(), s, s.execute())
        path = store._path(s.cache_key())
        record = json.loads(path.read_text())
        del record["engine"]          # simulate a pre-engine-PR record
        path.write_text(json.dumps(record))
        assert campaign_main(["export", "--json", "--store",
                              str(store.root)]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported[0]["engine"] == "legacy"


class TestDiffAcrossCodeVersions:
    def _put_as(self, store, s, code, created, monkeypatch):
        """Store one executed spec under a forced code fingerprint."""
        monkeypatch.setattr("repro.campaign.spec.code_fingerprint",
                            lambda: code)
        monkeypatch.setattr("repro.campaign.store.code_fingerprint",
                            lambda: code)
        key = s.cache_key()
        store.put(key, s, s.execute())
        path = store._path(key)
        record = json.loads(path.read_text())
        record["created"] = created
        path.write_text(json.dumps(record))

    def test_latest_vs_prev_pairs_identical_specs(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.campaign.__main__ import main as campaign_main

        store = ResultStore(tmp_path / "store")
        s = spec()
        self._put_as(store, s, "old0000code0", 1000.0, monkeypatch)
        self._put_as(store, s, "new0000code0", 2000.0, monkeypatch)
        monkeypatch.undo()
        assert campaign_main(["diff", "prev", "latest",
                              "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "prev (code=old0000code0)" in out
        assert "latest (code=new0000code0)" in out
        # Identical simulator output on both sides: one pair, no
        # statistically flagged deltas.
        assert "1 pair(s), 0 flagged delta(s)" in out

    def test_code_prefix_selector(self, tmp_path, monkeypatch, capsys):
        from repro.campaign.__main__ import main as campaign_main

        store = ResultStore(tmp_path / "store")
        s = spec()
        self._put_as(store, s, "old0000code0", 1000.0, monkeypatch)
        self._put_as(store, s, "new0000code0", 2000.0, monkeypatch)
        monkeypatch.undo()
        assert campaign_main(["diff", "code=old", "code=new", "--store",
                              str(store.root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["pairs"]) == 1
        assert report["a"]["codes"] == ["old0000code0"]
        assert report["b"]["codes"] == ["new0000code0"]
