"""Unit tests for gshare/BTB/RAS branch prediction."""

import pytest

from repro.errors import ConfigError
from repro.frontend.bpred import (
    BPredConfig,
    BranchPredictor,
    BTB,
    GShare,
    ReturnStack,
)
from repro.isa import BranchKind, DynInstr, OpClass


def _branch(pc, taken, target=0x2000, kind=BranchKind.COND, seq=0,
            fall=None):
    return DynInstr(seq=seq, pc=pc, op=OpClass.BRANCH, dest=None, srcs=(),
                    sid=0, branch_kind=kind, taken=taken, target_pc=target,
                    fall_pc=fall if fall is not None else pc + 4)


class TestGShare:
    def test_learns_always_taken(self):
        g = GShare(BPredConfig())
        for _ in range(8):
            g.update(0x100, True)
        assert g.predict(0x100)

    def test_learns_never_taken(self):
        g = GShare(BPredConfig())
        for _ in range(8):
            g.update(0x100, False)
        assert not g.predict(0x100)

    def test_learns_alternating_with_history(self):
        """Global history disambiguates a strict alternation."""
        g = GShare(BPredConfig())
        outcome = True
        for _ in range(2000):
            g.update(0x100, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(200):
            if g.predict(0x100) == outcome:
                correct += 1
            g.update(0x100, outcome)
            outcome = not outcome
        assert correct > 180


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(BPredConfig())
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_lru_within_set(self):
        cfg = BPredConfig(btb_entries=8, btb_ways=2)
        btb = BTB(cfg)
        sets = cfg.btb_entries // cfg.btb_ways
        a, b, c = 0x100, 0x100 + 4 * sets, 0x100 + 8 * sets  # same set
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)
        btb.update(c, 3)     # evicts b
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None


class TestRAS:
    def test_push_pop(self):
        ras = ReturnStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestBranchPredictor:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BPredConfig(pht_entries=1000)

    def test_biased_branch_converges(self):
        bp = BranchPredictor()
        wrong = sum(not bp.predict(_branch(0x100, True, seq=i))
                    for i in range(50))
        assert wrong <= 3   # first misses: direction learn + BTB fill

    def test_call_return_pair(self):
        bp = BranchPredictor()
        call = _branch(0x100, True, target=0x1000, kind=BranchKind.CALL,
                       fall=0x104)
        bp.predict(call)
        ret = _branch(0x1100, True, target=0x104, kind=BranchKind.RET)
        assert bp.predict(ret)

    def test_return_without_call_mispredicts(self):
        bp = BranchPredictor()
        ret = _branch(0x1100, True, target=0x104, kind=BranchKind.RET)
        assert not bp.predict(ret)

    def test_btb_miss_on_taken_counts(self):
        bp = BranchPredictor()
        br = _branch(0x300, True, target=0x900, kind=BranchKind.UNCOND)
        assert not bp.predict(br)          # BTB cold
        assert bp.predict(br)              # BTB now knows the target
        assert bp.stats.btb_misses == 1

    def test_mispredict_rate_counter(self):
        bp = BranchPredictor()
        for i in range(10):
            bp.predict(_branch(0x100 + 8 * i, True))
        assert 0.0 <= bp.stats.mispredict_rate <= 1.0
        assert bp.stats.lookups == 10
