"""Smoke tests for the experiment harness (small budgets)."""

import pytest

from repro.experiments import ExperimentContext, geomean
from repro.experiments import (
    fig01_latency,
    fig02_loops,
    fig11_same_clock,
    fig12_performance,
    residency,
    table1_freq,
)

#: Small, shared context — smoke-level budgets, two contrasting benchmarks.
@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(instructions=6000, warmup=10000,
                             benchmarks=("ijpeg", "gcc"))


class TestAnalyticalExperiments:
    def test_fig1_rows(self):
        rows = fig01_latency.run(None)
        assert len(rows) == 6
        for row in rows:
            assert row["0.25um"] > row["0.06um"]

    def test_table1_rows(self):
        rows = table1_freq.run(None)
        assert len(rows) == 6
        for row in rows:
            assert row["0.06um"] > row["0.18um"]


class TestSimulationExperiments:
    def test_fig2(self, ctx):
        rows = fig02_loops.run(ctx)
        avg = rows[-1]
        assert avg["benchmark"] == "average"
        assert avg["wakeup_select_%"] > avg["fetch_mispredict_%"]

    def test_fig11(self, ctx):
        rows = fig11_same_clock.run(ctx)
        for row in rows:
            assert 0.1 < row["register_allocation"] < 2.0
            assert 0.1 < row["flywheel"] < 2.0

    def test_fig12_sweep_monotone_on_loopy_bench(self, ctx):
        rows = fig12_performance.run(ctx)
        ij = next(r for r in rows if r["benchmark"] == "ijpeg")
        # More front-end clock never makes ijpeg dramatically worse.
        assert ij["FE100%,BE50%"] > 0.5 * ij["FE0%,BE50%"]

    def test_residency(self, ctx):
        rows = residency.run(ctx)
        for row in rows[:-1]:
            assert 0.0 <= row["ec_residency_%"] <= 100.0


class TestHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_context_caches_runs(self, ctx):
        r1 = ctx.baseline("ijpeg")
        r2 = ctx.baseline("ijpeg")
        assert r1 is r2


class TestSensitivity:
    def test_iw_sweep_shapes(self, ctx):
        from repro.experiments import sensitivity
        rows = sensitivity.run(ctx)
        avg = rows[-1]
        # IPC can only improve (weakly) with a larger window...
        assert avg["ipc_32"] <= avg["ipc_128"] * 1.02
        # ...but the permitted clock falls, so clock-adjusted performance
        # of the large window is below the small one's on these workloads.
        assert avg["perf_256"] < avg["perf_128"] < avg["perf_32"]
