"""Tests for the walker's memory-address model (recency-based warm set)."""

from collections import Counter

from repro.mem import Cache
from repro.workloads import InstructionStream, generate_program, get_profile
from repro.isa import OpClass


def _addresses(name, n, region_base, region_end):
    prog = generate_program(get_profile(name))
    stream = InstructionStream(prog)
    out = []
    for _ in range(n):
        dyn = next(stream)
        if dyn.mem_addr is not None and region_base <= dyn.mem_addr < region_end:
            out.append(dyn.mem_addr)
    return out


class TestWarmRegion:
    def test_warm_set_reuses_lines(self):
        """The warm working set revisits lines at short distances —
        without reuse every access would be a compulsory DRAM miss, which
        the paper's L2-resident workloads do not have."""
        addrs = _addresses("gcc", 60_000, 0x2000_0000, 0x3000_0000)
        assert len(addrs) > 500
        lines = Counter(a >> 5 for a in addrs)
        repeated = sum(1 for c in lines.values() if c > 1)
        assert repeated / len(lines) > 0.3

    def test_warm_footprint_exceeds_l1_fits_l2(self):
        addrs = _addresses("gcc", 80_000, 0x2000_0000, 0x3000_0000)
        footprint = len(set(a >> 5 for a in addrs)) * 32
        assert footprint > 16 * 1024          # no tiny-L1-resident set
        assert footprint < 512 * 1024         # fits the L2

    def test_warm_set_produces_l2_hits(self):
        """Replaying the warm stream against a real L1+L2 shows the
        steady-state L1-miss/L2-hit behaviour."""
        addrs = _addresses("gcc", 80_000, 0x2000_0000, 0x3000_0000)
        l1 = Cache("l1", 64 * 1024, 4)
        l2 = Cache("l2", 512 * 1024, 4)
        l2_hits = 0
        for a in addrs:
            if not l1.access(a):
                if l2.access(a):
                    l2_hits += 1
        assert l2_hits > 0


class TestHotRegion:
    def test_hot_set_is_l1_resident(self):
        addrs = _addresses("ijpeg", 40_000, 0x1000_0000, 0x2000_0000)
        l1 = Cache("l1", 64 * 1024, 4)
        hits = sum(l1.access(a) for a in addrs)
        assert hits / len(addrs) > 0.9


class TestColdRegion:
    def test_cold_set_misses_everything(self):
        addrs = _addresses("gcc", 80_000, 0x4000_0000, 0x8000_0000)
        if len(addrs) < 50:   # some profiles barely touch cold
            return
        l2 = Cache("l2", 512 * 1024, 4)
        hits = sum(l2.access(a) for a in addrs)
        assert hits / len(addrs) < 0.6
