"""Unit + property tests for the synthetic workload substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.isa import BranchKind, OpClass
from repro.workloads import (
    PROFILES,
    SPEC_NAMES,
    InstructionStream,
    Program,
    WorkloadProfile,
    generate_program,
    get_profile,
)
from repro.workloads.cfg import INSTR_BYTES, BasicBlock, Region


class TestProfiles:
    def test_all_spec_benchmarks_present(self):
        for name in SPEC_NAMES:
            assert name in PROFILES

    def test_get_profile_unknown(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_profile("doom")

    def test_fraction_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", load_frac=1.5)

    def test_hot_warm_budget(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", hot_frac=0.8, warm_frac=0.4)

    def test_range_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", loop_trip=(8, 4))


class TestGenerator:
    def test_deterministic(self):
        p1 = generate_program(get_profile("smoke"))
        p2 = generate_program(get_profile("smoke"))
        assert p1.num_static_instrs == p2.num_static_instrs
        assert sorted(p1.blocks) == sorted(p2.blocks)

    def test_seed_changes_program(self):
        p1 = generate_program(get_profile("smoke"), seed=1)
        p2 = generate_program(get_profile("smoke"), seed=2)
        # Same structure family but different contents almost surely.
        i1 = [i.op for b in p1.blocks.values() for i in b.instrs]
        i2 = [i.op for b in p2.blocks.values() for i in b.instrs]
        assert i1 != i2

    def test_every_spec_program_is_valid(self):
        for name in SPEC_NAMES:
            prog = generate_program(get_profile(name))
            assert prog.finalized
            assert prog.num_static_instrs > 50

    def test_vortex_has_biggest_code(self):
        sizes = {name: generate_program(get_profile(name)).code_bytes
                 for name in SPEC_NAMES}
        assert max(sizes, key=sizes.get) == "vortex"

    def test_three_regions(self):
        prog = generate_program(get_profile("smoke"))
        assert len(prog.regions) == 3


class TestProgramValidation:
    def test_empty_block_rejected(self):
        prog = Program(name="t")
        prog.add_block(BasicBlock(bid=0))
        with pytest.raises(WorkloadError):
            prog.finalize()

    def test_duplicate_block_rejected(self):
        prog = Program(name="t")
        prog.add_block(BasicBlock(bid=0))
        with pytest.raises(WorkloadError):
            prog.add_block(BasicBlock(bid=0))

    def test_region_validation(self):
        with pytest.raises(WorkloadError):
            Region(rid=0, base=0, size=0)


class TestStream:
    def test_requires_finalized(self):
        prog = Program(name="t")
        with pytest.raises(WorkloadError):
            InstructionStream(prog)

    def test_program_order_sequence(self):
        prog = generate_program(get_profile("smoke"))
        stream = InstructionStream(prog)
        seqs = [next(stream).seq for _ in range(500)]
        assert seqs == list(range(500))

    def test_deterministic_stream(self):
        prog = generate_program(get_profile("smoke"))
        s1 = [d.pc for d in _take(InstructionStream(prog), 2000)]
        s2 = [d.pc for d in _take(InstructionStream(prog), 2000)]
        assert s1 == s2

    def test_pc_continuity(self):
        """The next instruction's PC always equals the previous next_pc."""
        prog = generate_program(get_profile("smoke"))
        stream = InstructionStream(prog)
        prev = next(stream)
        for _ in range(3000):
            cur = next(stream)
            assert cur.pc == prev.next_pc
            prev = cur

    def test_loop_trip_counts(self):
        """A loop branch with trip N is taken exactly N-1 times per entry."""
        prog = generate_program(get_profile("smoke"))
        stream = InstructionStream(prog)
        outcomes = {}
        for _ in range(20000):
            dyn = next(stream)
            if dyn.branch_kind == BranchKind.COND:
                outcomes.setdefault(dyn.sid, []).append(dyn.taken)
        # find a deterministic loop branch in the static program
        loops = {}
        for block in prog.blocks.values():
            term = block.terminator
            if term is not None and term.branch is not None \
                    and term.branch.loop_trip > 0:
                loops[term.sid] = term.branch.loop_trip
        assert loops, "smoke program should contain loops"
        for sid, trip in loops.items():
            seen = outcomes.get(sid)
            if not seen or len(seen) < trip:
                continue
            # Within each full loop execution: trip-1 takens then one fall.
            first_fall = seen.index(False)
            assert first_fall == trip - 1

    def test_memory_addresses_in_regions(self):
        prog = generate_program(get_profile("smoke"))
        stream = InstructionStream(prog)
        regions = {r.rid: r for r in prog.regions}
        for _ in range(5000):
            dyn = next(stream)
            if dyn.mem_addr is not None:
                assert any(r.base <= dyn.mem_addr < r.base + r.size
                           for r in regions.values())


def _take(stream, n):
    return [next(stream) for _ in range(n)]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_any_seed_generates_valid_program(seed):
    prog = generate_program(get_profile("smoke"), seed=seed)
    stream = InstructionStream(prog)
    prev = next(stream)
    for _ in range(300):
        cur = next(stream)
        assert cur.pc == prev.next_pc
        assert cur.seq == prev.seq + 1
        prev = cur


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_block_pcs_are_disjoint(seed):
    prog = generate_program(get_profile("smoke"), seed=seed)
    spans = sorted((b.pc, b.pc + len(b.instrs) * INSTR_BYTES)
                   for b in prog.blocks.values())
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2
